"""Tests for the observability layer (repro.obs) and its simulator wiring."""

import json
import pathlib

import pytest

from tests.conftest import make_stream
from repro.core import Pattern
from repro.obs import (
    NULL_TRACER,
    TraceKind,
    TraceRecorder,
    chrome_trace,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.simulator import simulate

PATTERN = Pattern.sequence(["A", "B", "C"], window=6.0)
GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_chrome_trace.json"


def tiny_trace() -> tuple[TraceRecorder, object]:
    """The fixed tiny workload behind the golden-file test: fully
    deterministic, small enough to diff by eye."""
    events = make_stream(num_events=30, seed=9)
    tracer = TraceRecorder()
    result = simulate("hypersonic", PATTERN, events, num_cores=3,
                      tracer=tracer)
    return tracer, result


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        # Every hook is a no-op returning None.
        assert NULL_TRACER.unit_busy(0.0, 1.0, 0, 0, "event", "event") is None
        assert NULL_TRACER.queue_depth(0.0, 0, "ES", 3) is None
        assert NULL_TRACER.migration(0.0, 1, 0, 1) is None

    def test_disabled_run_matches_traced_run(self):
        events = make_stream(num_events=200, seed=21)
        plain = simulate("hypersonic", PATTERN, events, num_cores=4)
        traced = simulate("hypersonic", PATTERN, events, num_cores=4,
                          tracer=TraceRecorder())
        assert traced.matches == plain.matches
        assert traced.throughput == plain.throughput
        assert traced.total_time == plain.total_time
        assert traced.unit_busy == plain.unit_busy
        assert "obs" not in plain.extra
        assert "obs" in traced.extra


class TestObsSummary:
    def test_busy_fractions_consistent_with_unit_busy(self):
        events = make_stream(num_events=300, seed=22)
        tracer = TraceRecorder()
        result = simulate("hypersonic", PATTERN, events, num_cores=4,
                          tracer=tracer)
        obs = result.extra["obs"]
        assert obs["total_time"] == result.total_time
        for unit, busy in enumerate(result.unit_busy):
            row = obs["units"][unit]
            assert row["busy"] == busy
            assert row["busy_fraction"] == pytest.approx(
                busy / result.total_time
            )
        # Traced spans must account for exactly the unit_busy totals.
        span_busy = {}
        for event in tracer.events:
            if event.kind == TraceKind.UNIT_BUSY:
                span_busy[event.unit] = span_busy.get(event.unit, 0.0) + event.dur
        for unit, busy in enumerate(result.unit_busy):
            assert span_busy.get(unit, 0.0) == pytest.approx(busy)

    def test_queue_depth_stats_present_per_channel(self):
        events = make_stream(num_events=300, seed=23)
        tracer = TraceRecorder()
        result = simulate("hypersonic", PATTERN, events, num_cores=4,
                          tracer=tracer)
        agents = result.extra["obs"]["agents"]
        assert agents  # at least one agent row
        for row in agents.values():
            for stats in row["channels"].values():
                assert stats["samples"] >= 1
                assert stats["max_depth"] >= stats["mean_depth"] >= 0.0

    def test_splitter_counts_surface(self):
        events = make_stream(num_events=300, seed=24)  # contains D/X types
        tracer = TraceRecorder()
        result = simulate("hypersonic", PATTERN, events, num_cores=4,
                          tracer=tracer)
        splitter = result.extra["obs"]["splitter"]
        assert splitter["routed"] > 0
        assert splitter["dropped"] > 0  # D and X are foreign to the pattern
        assert set(splitter["dropped_by_type"]) == {"D", "X"}
        assert sum(splitter["dropped_by_type"].values()) == splitter["dropped"]

    def test_partition_strategies_emit_obs_too(self):
        events = make_stream(num_events=200, seed=25)
        for strategy in ("sequential", "rip", "llsf"):
            tracer = TraceRecorder()
            result = simulate(strategy, PATTERN, events, num_cores=4,
                              tracer=tracer)
            obs = result.extra["obs"]
            assert obs["counts"][TraceKind.UNIT_BUSY] > 0
            assert obs["matches"]["count"] == result.matches or (
                # rip/llsf may emit ownership duplicates before dedup
                obs["matches"]["count"] >= result.matches
            )

    def test_alloc_plan_recorded(self):
        tracer, result = tiny_trace()
        assert result.extra["obs"]["counts"][TraceKind.ALLOC_PLAN] == 1
        plan = next(e for e in tracer.events
                    if e.kind == TraceKind.ALLOC_PLAN)
        assert sum(plan.args["per_agent"]) == 3
        assert plan.args["scheme"] == "cost"


class TestExporters:
    def test_chrome_trace_structure(self):
        tracer, _result = tiny_trace()
        trace = chrome_trace(tracer)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        records = trace["traceEvents"]
        phases = {record["ph"] for record in records}
        assert {"M", "X", "C"} <= phases
        for record in records:
            json.dumps(record)  # every record JSON-serialisable
            if record["ph"] == "X":
                assert record["dur"] >= 0.0
                assert record["pid"] == 1

    def test_chrome_trace_golden_file(self):
        """The exporter's output on the tiny workload is locked in; a
        diff means either the simulator's traced behaviour or the export
        format changed — both must be deliberate.  Regenerate with:
        PYTHONPATH=src:. python tests/make_sim_goldens.py --which trace
        """
        tracer, _result = tiny_trace()
        produced = chrome_trace(tracer)
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert produced == golden

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        tracer, _result = tiny_trace()
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == chrome_trace(tracer)

    def test_write_jsonl(self, tmp_path):
        tracer, _result = tiny_trace()
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), tracer)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == len(tracer.events)
        first = json.loads(lines[0])
        assert "kind" in first and "ts" in first

    def test_summarize_accepts_plain_event_list(self):
        tracer, result = tiny_trace()
        from_list = summarize(list(tracer.events), result.total_time)
        from_recorder = summarize(tracer, result.total_time)
        assert from_list == from_recorder


class TestExporterRobustness:
    """Degenerate traces must export, not raise (regression tests for the
    empty / instant-only / missing-field hardening)."""

    def test_empty_trace(self):
        trace = chrome_trace([])
        assert trace["traceEvents"]  # process metadata still present
        assert all(record["ph"] == "M" for record in trace["traceEvents"])
        summary = summarize([], 0.0)
        assert summary["events_recorded"] == 0
        assert summary["counts"] == {}
        assert summary["matches"]["count"] == 0

    def test_instant_only_trace(self):
        from repro.obs import TraceEvent

        events = [
            TraceEvent(TraceKind.ALLOC_PLAN, 0.0,
                       args={"per_agent": [1], "loads": [1.0],
                             "scheme": "cost"}),
            TraceEvent(TraceKind.SPLITTER_DROP, 1.0, args={"type": "X"}),
            TraceEvent(TraceKind.MATCH, 2.0, agent=0, args={}),  # no latency
        ]
        trace = chrome_trace(events)
        assert {r["ph"] for r in trace["traceEvents"]} == {"M", "i"}
        summary = summarize(events, 2.0)
        assert summary["matches"] == {"count": 1, "mean_latency": 0.0}
        assert summary["splitter"]["dropped_by_type"] == {"X": 1}

    def test_none_unit_and_agent_use_sentinel(self):
        from repro.obs import TraceEvent

        events = [
            TraceEvent(TraceKind.UNIT_BUSY, 0.0, dur=1.0, args={}),
            TraceEvent(TraceKind.QUEUE_DEPTH, 0.5, args={}),
            TraceEvent(TraceKind.ROLE_SWITCH, 1.0, args={}),
        ]
        trace = chrome_trace(events)
        spans = [r for r in trace["traceEvents"] if r["ph"] == "X"]
        assert spans[0]["tid"] == -1
        counters = [r for r in trace["traceEvents"] if r["ph"] == "C"]
        assert counters[0]["tid"] == -1
        assert counters[0]["args"] == {"depth": 0}
        summary = summarize(events, 1.0)
        assert summary["units"][-1]["items"] == 1
        assert summary["units"][-1]["role_switches"] == 1
        assert summary["agents"][-1]["channels"]["?"]["samples"] == 1

    def test_non_finite_timestamps_are_skipped(self):
        from repro.obs import TraceEvent

        events = [
            TraceEvent(TraceKind.MATCH, float("nan"), agent=0, args={}),
            TraceEvent(TraceKind.MATCH, 1.0, agent=0, args={}),
        ]
        trace = chrome_trace(events)
        instants = [r for r in trace["traceEvents"] if r["ph"] == "i"]
        assert len(instants) == 1
        json.dumps(trace)  # NaN-free, strictly serialisable


class TestDynamicsExport:
    """Chrome export of a run exercising role switches, migrations, and a
    fusion plan (agent-dynamic HYPERSONIC with a forced fusion pair)."""

    @pytest.fixture(scope="class")
    def dynamic_trace(self):
        pattern = Pattern.sequence(["A", "B", "C", "D"], window=8.0)
        events = make_stream(num_events=400, seed=13)
        tracer = TraceRecorder()
        result = simulate(
            "hypersonic", pattern, events, num_cores=5,
            agent_dynamic=True, force_fusion_pairs=((0, 1),), tracer=tracer,
        )
        return tracer, result

    def test_all_dynamics_kinds_recorded(self, dynamic_trace):
        tracer, _result = dynamic_trace
        kinds = {event.kind for event in tracer.events}
        assert {TraceKind.ROLE_SWITCH, TraceKind.MIGRATION,
                TraceKind.FUSION_PLAN} <= kinds

    def test_chrome_rendering_of_dynamics(self, dynamic_trace):
        tracer, _result = dynamic_trace
        trace = chrome_trace(tracer)
        records = trace["traceEvents"]
        by_name: dict[str, list] = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        switches = by_name[TraceKind.ROLE_SWITCH]
        migrations = by_name[TraceKind.MIGRATION]
        # dynamics render as thread-scoped instants on the unit timeline
        for record in switches + migrations:
            assert record["ph"] == "i"
            assert record["s"] == "t"
            assert record["pid"] == 1
            assert record["tid"] >= 0
        for record in switches:
            assert {"primary", "acted"} <= set(record["args"])
        for record in migrations:
            assert {"from", "to"} <= set(record["args"])
        fusion = by_name["fusion_plan"]
        assert len(fusion) == 1
        assert fusion[0]["args"]["groups"] == [[1, 2], [3]]
        assert fusion[0]["pid"] == 3  # control plane process
        # units the migrations land on are named threads
        named = {r["tid"] for r in records
                 if r["name"] == "thread_name" and r["pid"] == 1}
        assert {r["tid"] for r in migrations} <= named

    def test_timestamps_sorted(self, dynamic_trace):
        tracer, _result = dynamic_trace
        records = chrome_trace(tracer)["traceEvents"]
        body = [r for r in records if r["ph"] != "M"]
        timestamps = [r["ts"] for r in body]
        assert timestamps == sorted(timestamps)
        json.dumps(records)

    def test_summary_counts_dynamics(self, dynamic_trace):
        tracer, result = dynamic_trace
        obs = result.extra["obs"]
        assert obs["counts"][TraceKind.ROLE_SWITCH] > 0
        assert obs["counts"][TraceKind.MIGRATION] > 0
        switch_total = sum(row["role_switches"]
                           for row in obs["units"].values())
        assert switch_total == obs["counts"][TraceKind.ROLE_SWITCH]
        # fused runs calibrate against the fusion plan's allocation
        assert obs["calibration"]["scheme"] == "fusion"


class TestHarnessHook:
    def test_compare_strategies_tracer_factory(self):
        from repro.bench.harness import compare_strategies

        events = make_stream(num_events=200, seed=26)
        recorders = {}

        def factory(name):
            recorders[name] = TraceRecorder()
            return recorders[name]

        results = compare_strategies(
            PATTERN, events, cores=4,
            strategies=("sequential", "hypersonic"),
            tracer_factory=factory,
        )
        assert set(recorders) == {"sequential", "hypersonic"}
        for name, result in results.items():
            assert "obs" in result.extra
            assert len(recorders[name].events) > 0


class TestCliTrace:
    def test_simulate_command_writes_traces(self, tmp_path, capsys):
        from repro.cli import main

        stream = tmp_path / "stream.csv"
        code = main([
            "generate", "stocks", str(stream), "--events", "400",
            "--types", "4",
        ])
        assert code == 0
        trace = tmp_path / "trace.json"
        code = main([
            "simulate", "stocks", str(stream),
            "--length", "3", "--cores", "4",
            "--strategies", "sequential,hypersonic",
            "--trace", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace (hypersonic)" in out
        for strategy in ("sequential", "hypersonic"):
            path = tmp_path / f"trace-{strategy}.json"
            assert path.exists()
            loaded = json.loads(path.read_text(encoding="utf-8"))
            assert loaded["traceEvents"]
