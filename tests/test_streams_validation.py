"""Tests for stream utilities and the match-set validator."""

import pytest

from tests.conftest import make_stream
from repro.core import Event, EventType, Match, Pattern, PartialMatch
from repro.core.streams import (
    filter_types,
    merge_streams,
    split_by_type,
    substream_rates,
    take,
)
from repro.engine import assert_equivalent, detect, diff_match_sets

A, B = EventType("A"), EventType("B")


class TestMergeStreams:
    def test_merges_in_order(self):
        left = [Event(A, 1.0), Event(A, 3.0)]
        right = [Event(B, 2.0), Event(B, 4.0)]
        merged = list(merge_streams(left, right))
        assert [e.timestamp for e in merged] == [1.0, 2.0, 3.0, 4.0]

    def test_tie_break_deterministic(self):
        first = Event(A, 1.0)
        second = Event(B, 1.0)
        merged = list(merge_streams([second], [first]))
        assert merged[0] is first  # smaller event_id first


class TestFilterAndSplit:
    def test_filter_types(self):
        events = make_stream(num_events=100, seed=41)
        only_a = list(filter_types(events, ["A"]))
        assert only_a
        assert all(e.type.name == "A" for e in only_a)

    def test_split_by_type_preserves_order(self):
        events = make_stream(num_events=100, seed=42)
        buckets = split_by_type(events)
        for bucket in buckets.values():
            stamps = [e.timestamp for e in bucket]
            assert stamps == sorted(stamps)
        assert sum(len(b) for b in buckets.values()) == 100

    def test_take(self):
        events = make_stream(num_events=100, seed=43)
        assert take(iter(events), 7) == events[:7]


class TestSubstreamRates:
    def test_rates_sum_to_total(self):
        events = make_stream(num_events=1000, seed=44)
        rates = substream_rates(events)
        span = events[-1].timestamp - events[0].timestamp
        assert sum(rates.values()) == pytest.approx(1000 / span)

    def test_absent_types_zero(self):
        events = make_stream(num_events=100, seed=45, type_names=("A",))
        rates = substream_rates(events, type_names=["A", "Z"])
        assert rates["Z"] == 0.0
        assert rates["A"] > 0

    def test_empty(self):
        assert substream_rates([], ["A"]) == {"A": 0.0}


class TestMatchSetDiff:
    def _match(self, *timestamps):
        pm = PartialMatch.of("p1", Event(A, timestamps[0]))
        for index, stamp in enumerate(timestamps[1:], start=2):
            pm = pm.extended(f"p{index}", Event(B, stamp))
        return Match.from_partial(pm)

    def test_identical(self):
        matches = [self._match(1.0, 2.0)]
        diff = diff_match_sets(matches, list(matches))
        assert diff.equivalent
        assert diff.common == 1
        assert "identical" in diff.summary()

    def test_missing_and_unexpected(self):
        reference = [self._match(1.0)]
        candidate = [self._match(2.0)]
        diff = diff_match_sets(reference, candidate)
        assert not diff.equivalent
        assert len(diff.missing) == 1
        assert len(diff.unexpected) == 1

    def test_duplicates_collapsed(self):
        match = self._match(1.0)
        diff = diff_match_sets([match], [match, match])
        assert diff.equivalent

    def test_assert_equivalent_raises_with_context(self):
        with pytest.raises(AssertionError, match="mylabel"):
            assert_equivalent([self._match(1.0)], [], "mylabel")

    def test_real_engines_validate(self):
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        events = make_stream(num_events=200, seed=46)
        matches = detect(pattern, events)
        assert_equivalent(matches, matches)
