"""Tests for partition-simulation internals and SimResult mechanics."""

import pytest

from tests.conftest import make_stream, reference_matches
from repro.core import Pattern
from repro.baselines import LLSFEngine, RIPEngine
from repro.simulator import SequentialSimEngine, simulate_partitioned
from repro.simulator.metrics import SimResult


PATTERN = Pattern.sequence(["A", "B", "C"], window=5.0)


class TestSequentialSimEngine:
    def test_single_partition_owns_everything(self):
        events = make_stream(num_events=100, seed=61)
        engine = SequentialSimEngine(PATTERN)
        partitions = list(engine.partitions(events))
        assert len(partitions) == 1
        assert len(partitions[0].events) == 100
        assert engine.assign_unit(partitions[0], [0.0]) == 0

    def test_empty_stream_yields_nothing(self):
        engine = SequentialSimEngine(PATTERN)
        assert list(engine.partitions([])) == []


class TestSimulatePartitioned:
    def test_sequential_exact_matches(self):
        events = make_stream(num_events=500, seed=62)
        expected = {m.key for m in reference_matches(PATTERN, events)}
        result = simulate_partitioned(
            SequentialSimEngine(PATTERN), events, strategy_name="sequential"
        )
        assert result.matches == len(expected)
        assert result.duplication_factor == pytest.approx(1.0, abs=0.05)

    def test_paced_vs_closed_loop_same_matches(self):
        events = make_stream(num_events=400, seed=63)
        closed = simulate_partitioned(RIPEngine(PATTERN, 3), events)
        paced = simulate_partitioned(
            RIPEngine(PATTERN, 3), events, pace=5.0
        )
        assert closed.matches == paced.matches
        # Open-loop pacing stretches total time to about N * pace.
        assert paced.total_time >= 399 * 5.0

    def test_reported_units_override(self):
        events = make_stream(num_events=100, seed=64)
        result = simulate_partitioned(
            SequentialSimEngine(PATTERN), events, reported_units=24
        )
        assert result.num_units == 24

    def test_busy_time_bounded(self):
        events = make_stream(num_events=300, seed=65)
        result = simulate_partitioned(LLSFEngine(PATTERN, 4), events)
        for busy in result.unit_busy:
            assert 0 <= busy <= result.total_time + 1e-9

    def test_llsf_duplication_reported(self):
        events = make_stream(num_events=400, seed=66)
        result = simulate_partitioned(LLSFEngine(PATTERN, 4), events)
        assert 1.4 <= result.duplication_factor <= 2.3
        assert result.extra["partitions"] >= 2


class TestSimResult:
    def _result(self, throughput=2.0):
        total_time = 100.0 / throughput if throughput else 0.0
        return SimResult(
            strategy="x", num_units=4, events=100, matches=5,
            total_time=total_time, throughput=throughput,
            avg_latency=1.0, p95_latency=2.0, max_latency=3.0,
            peak_memory_bytes=1024, total_comparisons=10, total_work=50.0,
            unit_busy=[10.0, 20.0],
        )

    def test_gain_over(self):
        fast = self._result(throughput=4.0)
        slow = self._result(throughput=1.0)
        assert fast.gain_over(slow) == pytest.approx(4.0)

    def test_gain_over_zero_baseline(self):
        fast = self._result()
        zero = self._result(throughput=0.0)
        assert fast.gain_over(zero) == float("inf")

    def test_avg_utilization(self):
        result = self._result(throughput=2.0)  # total_time = 50
        assert result.avg_utilization == pytest.approx((10 + 20) / (2 * 50))

    def test_summary_row_units(self):
        row = self._result().summary_row()
        assert row["units"] == 4
        assert row["peak_memory_kb"] == 1.0
