"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def stock_csv(tmp_path):
    path = tmp_path / "stocks.csv"
    code = main([
        "generate", "stocks", str(path),
        "--events", "600", "--types", "4", "--seed", "3",
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "stocks", "out.csv"])
        assert args.events == 5000
        assert args.seed == 42


class TestGenerate:
    def test_writes_csv(self, stock_csv):
        text = stock_csv.read_text()
        assert text.startswith("type,timestamp,payload_size")
        assert text.count("\n") == 601  # header + 600 rows

    def test_sensors(self, tmp_path):
        path = tmp_path / "sensors.csv"
        assert main(["generate", "sensors", str(path), "--events", "100"]) == 0
        assert path.exists()


class TestDetect:
    @pytest.mark.parametrize("engine", ["sequential", "hybrid", "threads"])
    def test_engines_run(self, stock_csv, capsys, engine):
        code = main([
            "detect", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--engine", engine,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "SEQ" in out

    def test_engines_agree(self, stock_csv, capsys):
        counts = []
        for engine in ("sequential", "hybrid"):
            main([
                "detect", "stocks", str(stock_csv),
                "--length", "3", "--window", "20",
                "--selectivity", "0.4", "--engine", engine,
            ])
            out = capsys.readouterr().out
            counts.append(
                int(next(l for l in out.splitlines() if "matches" in l)
                    .split()[0])
            )
        assert counts[0] == counts[1]

    def test_too_few_types(self, stock_csv):
        with pytest.raises(SystemExit):
            main([
                "detect", "stocks", str(stock_csv),
                "--length", "7", "--window", "20",
            ])


class TestSimulate:
    def test_comparison_table(self, stock_csv, capsys):
        code = main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "4",
            "--strategies", "sequential,hypersonic",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hypersonic" in out
        assert "sequential" in out
        assert "gain" in out


class TestSimulateObservability:
    def test_trace_jsonl_and_metrics_out(self, stock_csv, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "4",
            "--strategies", "sequential,hypersonic",
            "--trace-jsonl", str(jsonl), "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace jsonl (hypersonic)" in out
        for strategy in ("sequential", "hypersonic"):
            path = tmp_path / f"trace-{strategy}.jsonl"
            assert path.exists()
            import json

            first = json.loads(path.read_text().splitlines()[0])
            assert "kind" in first
        dump = json.loads(metrics.read_text())
        strategies = {series["labels"]["strategy"]
                      for series in dump["sim_total_time"]["series"]}
        assert strategies == {"sequential", "hypersonic"}

    def test_metrics_out_prometheus_format(self, stock_csv, tmp_path):
        metrics = tmp_path / "metrics.prom"
        code = main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "3",
            "--strategies", "hypersonic",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE sim_total_time gauge" in text

    def test_missing_parent_dir_rejected(self, stock_csv):
        with pytest.raises(SystemExit):
            main([
                "simulate", "stocks", str(stock_csv),
                "--length", "3", "--window", "20", "--cores", "2",
                "--trace-jsonl", "/nonexistent-dir-xyz/trace.jsonl",
            ])


class TestObsReport:
    @pytest.fixture()
    def trace_jsonl(self, stock_csv, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        code = main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "4",
            "--strategies", "hypersonic",
            "--trace-jsonl", str(jsonl),
        ])
        assert code == 0
        capsys.readouterr()
        return jsonl

    def test_text_report(self, trace_jsonl, capsys):
        assert main(["obs-report", str(trace_jsonl)]) == 0
        out = capsys.readouterr().out
        assert "cost-model calibration" in out
        assert "critical-path latency attribution" in out
        assert "end-to-end:" in out
        assert "calibrated" in out or "drifted" in out

    def test_json_report(self, trace_jsonl, capsys):
        import json

        assert main(["obs-report", str(trace_jsonl), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"calibration", "latency_breakdown"}
        assert payload["calibration"]["verdict"] in ("calibrated", "drifted")
        assert payload["latency_breakdown"]["per_agent"]

    def test_tolerance_flag_changes_verdict_inputs(self, trace_jsonl, capsys):
        assert main([
            "obs-report", str(trace_jsonl), "--json", "--tolerance", "0.9",
        ]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        allocation = payload["calibration"]["allocation"]
        assert allocation["tolerance"] == 0.9

    def test_report_without_plan_degrades_gracefully(self, stock_csv,
                                                     tmp_path, capsys):
        jsonl = tmp_path / "seq.jsonl"
        main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "2",
            "--strategies", "sequential",
            "--trace-jsonl", str(jsonl),
        ])
        capsys.readouterr()
        assert main(["obs-report", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "n/a (trace has no allocation plan)" in out


class TestAutotune:
    @pytest.fixture()
    def hypersonic_trace(self, stock_csv, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        code = main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "4",
            "--strategies", "hypersonic",
            "--trace-jsonl", str(jsonl),
        ])
        assert code == 0
        capsys.readouterr()
        return jsonl

    def test_online_round_table(self, stock_csv, capsys):
        code = main([
            "autotune", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "6",
            "--world", "lock=2.4", "--rounds", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean |rel err|" in out
        assert "tuned model:" in out
        assert "error" in out

    def test_online_json(self, stock_csv, capsys):
        import json

        code = main([
            "autotune", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "6",
            "--world", "lock=2.4", "--rounds", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {
            "rounds", "tuned_parameters", "initial_error", "final_error",
            "improved", "converged",
        }
        assert payload["final_error"] <= payload["initial_error"]

    def test_offline_fit_from_trace(self, hypersonic_trace, capsys):
        code = main(["autotune", "--trace-jsonl", str(hypersonic_trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "share error:" in out
        assert "fitted model:" in out

    def test_offline_fit_deterministic(self, hypersonic_trace, capsys):
        outputs = []
        for _ in range(2):
            code = main([
                "autotune", "--trace-jsonl", str(hypersonic_trace), "--json",
            ])
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_offline_unfittable_trace_fails(self, stock_csv, tmp_path,
                                            capsys):
        jsonl = tmp_path / "seq.jsonl"
        main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "2",
            "--strategies", "sequential",
            "--trace-jsonl", str(jsonl),
        ])
        capsys.readouterr()
        assert main(["autotune", "--trace-jsonl", str(jsonl)]) == 1
        assert "no fittable allocation plan" in capsys.readouterr().err

    def test_world_flag_rejects_unknown_keys(self, stock_csv):
        with pytest.raises(SystemExit, match="--world"):
            main([
                "autotune", "stocks", str(stock_csv),
                "--world", "latch=1.0",
            ])

    def test_requires_input_without_trace(self):
        with pytest.raises(SystemExit, match="autotune needs a dataset"):
            main(["autotune"])


class TestSloCli:
    _ADAPTIVE = [
        "--length", "3", "--window", "20", "--selectivity", "0.4",
        "--cores", "4", "--strategies", "hypersonic",
        "--adapt", "on", "--shed-bound", "8", "--shed-policy", "pattern",
        "--pace", "0.2",
    ]

    @pytest.fixture()
    def adaptive_jsonl(self, stock_csv, tmp_path, capsys):
        jsonl = tmp_path / "adaptive.jsonl"
        code = main([
            "simulate", "stocks", str(stock_csv), *self._ADAPTIVE,
            "--slo-p95", "50", "--slo-recall", "0.9",
            "--slo-throughput", "1",
            "--trace-jsonl", str(jsonl),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hypersonic: slo" in out
        return jsonl

    def test_slo_flags_require_agent_chain_strategy(self, stock_csv):
        with pytest.raises(SystemExit, match="agent-chain"):
            main([
                "simulate", "stocks", str(stock_csv),
                "--length", "3", "--window", "20", "--cores", "2",
                "--strategies", "sequential", "--slo-p95", "50",
            ])

    def test_invalid_slo_spec_rejected(self, stock_csv):
        with pytest.raises(SystemExit, match="recall floor"):
            main([
                "simulate", "stocks", str(stock_csv), *self._ADAPTIVE,
                "--slo-recall", "1.5",
            ])

    def test_obs_report_audit_text(self, adaptive_jsonl, capsys):
        assert main([
            "obs-report", str(adaptive_jsonl), "--audit",
            "--slo-p95", "50", "--slo-recall", "0.9",
        ]) == 0
        out = capsys.readouterr().out
        assert "decision provenance" in out
        assert "slo report" in out
        assert "adaptation:" in out

    def test_obs_report_audit_json_is_deterministic(self, adaptive_jsonl,
                                                    capsys):
        import json

        outputs = []
        for _ in range(2):
            assert main([
                "obs-report", str(adaptive_jsonl), "--audit", "--json",
                "--slo-recall", "0.9",
            ]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert set(payload) >= {"calibration", "latency_breakdown",
                                "audit", "slo"}
        audit = payload["audit"]
        assert audit is not None and audit["decisions"]
        for decision in audit["decisions"]:
            assert "trigger" in decision and "effect" in decision
        assert payload["slo"]["specs"][0]["spec"]["metric"] == "recall"


class TestBenchTune:
    def test_quick_bench_records_tuned_row(self, tmp_path, capsys):
        code = main(["bench", "--quick", "--tune", "--dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "autotune: mean |rel err|" in out
        assert "hypersonic_tuned" in out
