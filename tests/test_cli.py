"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def stock_csv(tmp_path):
    path = tmp_path / "stocks.csv"
    code = main([
        "generate", "stocks", str(path),
        "--events", "600", "--types", "4", "--seed", "3",
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "stocks", "out.csv"])
        assert args.events == 5000
        assert args.seed == 42


class TestGenerate:
    def test_writes_csv(self, stock_csv):
        text = stock_csv.read_text()
        assert text.startswith("type,timestamp,payload_size")
        assert text.count("\n") == 601  # header + 600 rows

    def test_sensors(self, tmp_path):
        path = tmp_path / "sensors.csv"
        assert main(["generate", "sensors", str(path), "--events", "100"]) == 0
        assert path.exists()


class TestDetect:
    @pytest.mark.parametrize("engine", ["sequential", "hybrid", "threads"])
    def test_engines_run(self, stock_csv, capsys, engine):
        code = main([
            "detect", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--engine", engine,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "SEQ" in out

    def test_engines_agree(self, stock_csv, capsys):
        counts = []
        for engine in ("sequential", "hybrid"):
            main([
                "detect", "stocks", str(stock_csv),
                "--length", "3", "--window", "20",
                "--selectivity", "0.4", "--engine", engine,
            ])
            out = capsys.readouterr().out
            counts.append(
                int(next(l for l in out.splitlines() if "matches" in l)
                    .split()[0])
            )
        assert counts[0] == counts[1]

    def test_too_few_types(self, stock_csv):
        with pytest.raises(SystemExit):
            main([
                "detect", "stocks", str(stock_csv),
                "--length", "7", "--window", "20",
            ])


class TestSimulate:
    def test_comparison_table(self, stock_csv, capsys):
        code = main([
            "simulate", "stocks", str(stock_csv),
            "--length", "3", "--window", "20",
            "--selectivity", "0.4", "--cores", "4",
            "--strategies", "sequential,hypersonic",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hypersonic" in out
        assert "sequential" in out
        assert "gain" in out
