"""Tests for the Table 2 query templates."""

import pytest

from repro.core import PatternError
from repro.datasets import SensorConfig, StockConfig, generate_sensor_stream, generate_stock_stream
from repro.engine import detect
from repro.workloads import (
    sensor_kleene_query,
    sensor_negation_query,
    sensor_sequence_query,
    stock_kleene_query,
    stock_negation_query,
    stock_sequence_query,
)


@pytest.fixture(scope="module")
def stock_sample():
    return generate_stock_stream(
        StockConfig(num_events=2500, symbols=tuple(f"S{i}" for i in range(7)),
                    seed=17)
    )


@pytest.fixture(scope="module")
def sensor_sample():
    return generate_sensor_stream(SensorConfig(num_events=2500, seed=17))


class TestStockQueries:
    def test_qa1_structure(self, stock_sample):
        spec = stock_sequence_query(
            ["S0", "S1", "S2"], 20.0, stock_sample, selectivity=0.2
        )
        assert spec.template == "Q_A1"
        assert spec.pattern.length == 3
        assert len(spec.thresholds) == 2  # adjacent pairs

    def test_qa1_length_bounds(self, stock_sample):
        with pytest.raises(PatternError):
            stock_sequence_query(["S0", "S1"], 20.0, stock_sample)
        with pytest.raises(PatternError):
            stock_sequence_query(
                [f"S{i}" for i in range(8)], 20.0, stock_sample
            )

    def test_qa2_kleene(self, stock_sample):
        spec = stock_kleene_query(
            [f"S{i}" for i in range(6)], 20.0, stock_sample,
            kleene_position=2, selectivity=0.2,
        )
        assert spec.pattern.items[2].is_kleene
        assert spec.template == "Q_A2"

    def test_qa2_requires_six_types(self, stock_sample):
        with pytest.raises(PatternError):
            stock_kleene_query(["S0", "S1", "S2"], 20.0, stock_sample)

    def test_qa2_rejects_leading_kleene(self, stock_sample):
        with pytest.raises(PatternError):
            stock_kleene_query(
                [f"S{i}" for i in range(6)], 20.0, stock_sample,
                kleene_position=0,
            )

    def test_qa3_negation_skips_conditions(self, stock_sample):
        spec = stock_negation_query(
            ["S0", "S1", "S2", "S3"], 20.0, stock_sample,
            negated_position=2, selectivity=0.2,
        )
        assert spec.pattern.items[2].is_negated
        # conditions cover adjacent positive pairs only: (0,1), (1,3).
        assert len(spec.thresholds) == 2

    def test_queries_detect_consistently(self, stock_sample):
        spec = stock_sequence_query(
            ["S0", "S1", "S2"], 15.0, stock_sample, selectivity=0.3
        )
        matches = detect(spec.pattern, stock_sample)
        for match in matches[:20]:
            assert match["p1"].type.name == "S0"
            assert match["p3"].type.name == "S2"
            assert match.latest - match.earliest <= 15.0


class TestSensorQueries:
    def test_qb1_structure(self, sensor_sample):
        spec = sensor_sequence_query(
            ["cooking", "sleeping", "washing"], 20.0, sensor_sample,
            selectivity=0.3,
        )
        assert spec.template == "Q_B1"
        assert len(spec.thresholds) == 2

    def test_qb2_kleene(self, sensor_sample):
        activities = SensorConfig().activities
        spec = sensor_kleene_query(
            list(activities[:6]), 20.0, sensor_sample, selectivity=0.3
        )
        assert spec.pattern.kleene_items()

    def test_qb3_negation(self, sensor_sample):
        spec = sensor_negation_query(
            ["cooking", "sleeping", "washing", "relaxing"], 20.0,
            sensor_sample, selectivity=0.3,
        )
        assert spec.pattern.negated_items()

    def test_margin_semantics(self, sensor_sample):
        spec = sensor_sequence_query(
            ["cooking", "sleeping", "washing"], 20.0, sensor_sample,
            selectivity=0.4, zone="kitchen",
        )
        matches = detect(spec.pattern, sensor_sample)
        margin = spec.thresholds[0]
        for match in matches[:20]:
            assert (
                match["p2"]["distance_kitchen"]
                > match["p1"]["distance_kitchen"] + margin - 1e-9
            )
