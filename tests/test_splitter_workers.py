"""Tests for the splitter and the worker policies."""

import random

from repro.core import Event, EventType, Pattern, compile_pattern
from repro.hypersonic import ItemKind, Roles, WorkQueue, WorkItem
from repro.hypersonic.splitter import RouteTarget, Splitter
from repro.hypersonic.workers import ExecutionUnit, WorkerPolicy, assign_roles

A, B, C, X = (EventType(n) for n in "ABCX")


def ev(type_, t):
    return Event(type_, t)


def build_splitter(pattern):
    nfa = compile_pattern(pattern)
    return Splitter(nfa=nfa), nfa


class TestSplitter:
    def test_routes_by_type(self):
        splitter, nfa = build_splitter(
            Pattern.sequence(["A", "B"], window=5.0)
        )
        q_seed = WorkQueue("seed")
        q_event = WorkQueue("event")
        splitter.add_route(
            "A", RouteTarget(q_seed, ItemKind.MATCH, seed_position="p1")
        )
        splitter.add_route("B", RouteTarget(q_event, ItemKind.EVENT))
        splitter.route(ev(A, 1.0))
        splitter.route(ev(B, 2.0))
        assert len(q_seed) == 1
        assert q_seed.pop().kind is ItemKind.MATCH
        assert q_event.pop().kind is ItemKind.EVENT

    def test_seed_wraps_partial_match(self):
        splitter, _ = build_splitter(Pattern.sequence(["A", "B"], window=5.0))
        q = WorkQueue("seed")
        splitter.add_route(
            "A", RouteTarget(q, ItemKind.MATCH, seed_position="p1")
        )
        splitter.route(ev(A, 1.5))
        item = q.pop()
        assert item.payload["p1"].timestamp == 1.5

    def test_unrouted_types_dropped(self):
        splitter, _ = build_splitter(Pattern.sequence(["A", "B"], window=5.0))
        receipt = splitter.route(ev(X, 1.0))
        assert receipt.dropped
        assert receipt.pushes == 0
        assert splitter.events_routed == 0

    def test_watermark_advances(self):
        splitter, _ = build_splitter(Pattern.sequence(["A", "B"], window=5.0))
        assert splitter.watermark == float("-inf")
        splitter.route(ev(X, 3.0))  # even dropped events advance time
        assert splitter.watermark == 3.0

    def test_watermark_advances_on_dropped_foreign_type(self):
        """Regression lock on the intended semantics: dropped foreign-type
        events MUST advance the watermark (it tracks global input-stream
        progress, which the negation quarantine release depends on — a
        tail of foreign types must not withhold guard-clean matches)."""
        splitter, _ = build_splitter(Pattern.sequence(["A", "B"], window=5.0))
        q = WorkQueue("event")
        splitter.add_route("B", RouteTarget(q, ItemKind.EVENT))
        splitter.route(ev(B, 1.0))
        assert splitter.watermark == 1.0
        receipt = splitter.route(ev(X, 7.5))
        assert receipt.dropped
        assert splitter.watermark == 7.5  # advanced by the dropped event
        assert splitter.events_dropped == 1
        assert splitter.drops_by_type == {"X": 1}
        # A later routed event keeps advancing it monotonically.
        splitter.route(ev(B, 8.0))
        assert splitter.watermark == 8.0
        assert splitter.events_routed == 2

    def test_seal(self):
        splitter, _ = build_splitter(Pattern.sequence(["A", "B"], window=5.0))
        splitter.seal()
        assert splitter.sealed
        assert splitter.watermark == float("inf")

    def test_multiple_targets_per_type(self):
        splitter, _ = build_splitter(
            Pattern.sequence(["A", "A"], window=5.0)
        )
        q1, q2 = WorkQueue("1"), WorkQueue("2")
        splitter.add_route(
            "A", RouteTarget(q1, ItemKind.MATCH, seed_position="p1")
        )
        splitter.add_route("A", RouteTarget(q2, ItemKind.EVENT))
        receipt = splitter.route(ev(A, 1.0))
        assert receipt.pushes == 2


class _StubAgent:
    """Minimal AgentLike for policy tests."""

    def __init__(self):
        self.es = WorkQueue("es")
        self.ms = WorkQueue("ms")

    def has_event_work(self, now=float("inf")):
        return self.es.has_ready(now)

    def has_match_work(self, now=float("inf")):
        return self.ms.has_ready(now)

    def pop(self, role, now=float("inf")):
        queue = self.es if role == Roles.EVENT else self.ms
        return queue.pop(now)


def _event_item():
    return WorkItem.event(ev(A, 1.0))


def _match_item():
    from repro.core import PartialMatch
    return WorkItem.match(PartialMatch.of("p1", ev(A, 1.0)))


class TestWorkerPolicy:
    def make_policy(self, num_agents=2, units=None, **kwargs):
        agents = [_StubAgent() for _ in range(num_agents)]
        units = units or [
            ExecutionUnit(0, 0, Roles.EVENT),
            ExecutionUnit(1, 1, Roles.MATCH),
        ]
        policy = WorkerPolicy(
            agents=agents, units=units, window=5.0,
            rng=random.Random(1), **kwargs
        )
        return policy, agents, units

    def test_primary_role_first(self):
        policy, agents, units = self.make_policy()
        agents[0].es.push(_event_item())
        agents[0].ms.push(_match_item())
        selection = policy.select(units[0])
        assert selection.role == Roles.EVENT

    def test_role_dynamic_falls_back(self):
        policy, agents, units = self.make_policy()
        agents[0].ms.push(_match_item())
        selection = policy.select(units[0])  # event-primary unit
        assert selection.role == Roles.MATCH

    def test_role_static_does_not_fall_back(self):
        policy, agents, units = self.make_policy(role_dynamic=False)
        agents[0].ms.push(_match_item())
        assert policy.select(units[0]) is None
        assert units[0].idle_polls == 1

    def test_agent_dynamic_hops_to_loaded_agent(self):
        policy, agents, units = self.make_policy(agent_dynamic=True)
        extra = ExecutionUnit(2, 0, Roles.EVENT)
        policy = WorkerPolicy(
            agents=agents, units=[*units, extra], window=5.0,
            role_dynamic=True, agent_dynamic=True, rng=random.Random(1),
        )
        policy.watermark = lambda: 100.0
        agents[1].es.push(_event_item())
        selection = policy.select(extra)
        assert selection is not None
        assert selection.agent_index == 1
        assert extra.current_agent == 1
        assert extra.hops == 1

    def test_hop_rate_limited_by_watermark(self):
        policy, agents, units = self.make_policy(agent_dynamic=True)
        extra = ExecutionUnit(2, 0, Roles.EVENT)
        policy = WorkerPolicy(
            agents=agents, units=[*units, extra], window=5.0,
            agent_dynamic=True, rng=random.Random(1),
        )
        clock = {"value": 100.0}
        policy.watermark = lambda: clock["value"]
        agents[1].es.push(_event_item())
        assert policy.select(extra) is not None  # first hop
        agents[0].es.push(_event_item())
        agents[0].es.pop()  # leave agent 0 empty again
        agents[1].es.push(_event_item())
        # Watermark frozen: hop denied until the idle streak accumulates.
        assert policy.select(extra) is not None  # current agent is 1 now
        extra.current_agent = 0
        extra.idle_streak = 0
        agents[1].es.push(_event_item())  # work exists, but hop is limited
        assert policy.select(extra) is None
        assert policy.select(extra) is None
        assert policy.select(extra) is None
        # After three consecutive idle polls the unit may hop anyway.
        assert policy.select(extra) is not None

    def test_last_resident_never_migrates(self):
        agents = [_StubAgent(), _StubAgent()]
        lone = ExecutionUnit(0, 0, Roles.EVENT)
        policy = WorkerPolicy(
            agents=agents, units=[lone], window=5.0,
            agent_dynamic=True, rng=random.Random(1),
        )
        policy.watermark = lambda: 100.0
        agents[1].es.push(_event_item())
        lone.idle_streak = 10
        assert policy.select(lone) is None
        assert lone.current_agent == 0


class TestAssignRoles:
    def test_half_and_half(self):
        units = assign_roles([4], random.Random(0))
        roles = [unit.primary_role for unit in units]
        assert roles.count(Roles.EVENT) == 2
        assert roles.count(Roles.MATCH) == 2

    def test_odd_count_gets_both_roles(self):
        units = assign_roles([3], random.Random(0))
        roles = {unit.primary_role for unit in units}
        assert roles == {Roles.EVENT, Roles.MATCH}

    def test_unit_ids_global_and_agents_assigned(self):
        units = assign_roles([2, 3], random.Random(0))
        assert [unit.unit_id for unit in units] == [0, 1, 2, 3, 4]
        assert [unit.primary_agent for unit in units] == [0, 0, 1, 1, 1]
        assert all(unit.current_agent == unit.primary_agent for unit in units)
