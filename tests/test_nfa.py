"""Tests for chain-NFA compilation."""

import pytest

from repro.core import (
    AndCondition,
    AttributeCondition,
    Event,
    EventType,
    PartialMatch,
    Pattern,
    PatternError,
    UnaryCondition,
    compile_pattern,
)
from repro.core.nfa import seq_order_allows

A = EventType("A")


class TestCompilation:
    def test_one_stage_per_positive_item(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=1.0))
        assert nfa.num_stages == 3
        assert [s.event_type_name for s in nfa.stages] == ["A", "B", "C"]
        assert [s.index for s in nfa.stages] == [0, 1, 2]

    def test_negated_items_have_no_stage(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "X", "B"], window=1.0, negated=[1])
        )
        assert nfa.num_stages == 2
        assert [s.event_type_name for s in nfa.stages] == ["A", "B"]

    def test_non_seq_rejected(self):
        with pytest.raises(PatternError):
            compile_pattern(Pattern.conjunction(["A", "B"], window=1.0))

    def test_kleene_flag(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "C"], window=1.0, kleene=[1])
        )
        assert nfa.stages[1].is_kleene
        assert nfa.has_kleene()


class TestConditionPlacement:
    def test_conjunct_attached_at_earliest_bound_stage(self):
        c12 = AttributeCondition("p1", "x", "<", "p2", "x")
        c13 = AttributeCondition("p1", "x", "<", "p3", "x")
        nfa = compile_pattern(
            Pattern.sequence(
                ["A", "B", "C"], window=1.0, condition=AndCondition((c13, c12))
            )
        )
        assert nfa.stages[0].conditions == ()
        assert nfa.stages[1].conditions == (c12,)
        assert nfa.stages[2].conditions == (c13,)

    def test_unary_on_first_position_lands_on_stage_zero(self):
        unary = UnaryCondition("p1", lambda e: True)
        nfa = compile_pattern(
            Pattern.sequence(["A", "B"], window=1.0, condition=unary)
        )
        assert nfa.stages[0].conditions == (unary,)

    def test_guard_conditions_move_to_guard(self):
        guard_cond = AttributeCondition("p1", "x", "<", "p2", "x")
        nfa = compile_pattern(
            Pattern.sequence(
                ["A", "X", "B"],
                window=1.0,
                negated=[1],
                condition=guard_cond,
            )
        )
        # p2 is the negated position, so the conjunct belongs to the guard.
        guard = nfa.stages[0].guards_after[0]
        assert guard.conditions == (guard_cond,)
        assert nfa.stages[0].conditions == ()

    def test_condition_across_two_negated_positions_rejected(self):
        cond = AttributeCondition("p2", "x", "<", "p4", "x")
        with pytest.raises(PatternError):
            compile_pattern(
                Pattern.sequence(
                    ["A", "X", "B", "X", "C"],
                    window=1.0,
                    negated=[1, 3],
                    condition=cond,
                )
            )


class TestGuards:
    def test_internal_guard_wiring(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "X", "B"], window=1.0, negated=[1])
        )
        guard = nfa.stages[0].guards_after[0]
        assert guard.after_position == "p1"
        assert guard.before_position == "p3"
        assert not guard.trailing

    def test_trailing_guard_wiring(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "X"], window=1.0, negated=[2])
        )
        guard = nfa.stages[-1].guards_after[0]
        assert guard.trailing
        assert guard.after_position == "p2"

    def test_guarded_type_names(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "X", "B"], window=1.0, negated=[1])
        )
        assert nfa.guarded_type_names() == frozenset({"X"})
        assert nfa.consumed_type_names() == frozenset({"A", "B", "X"})

    def test_guard_violates_between_neighbours(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "X", "B"], window=10.0, negated=[1])
        )
        guard = nfa.stages[0].guards_after[0]
        first = Event(A, 1.0)
        last = Event(A, 5.0)
        binding = {"p1": first, "p3": last}
        inside = Event(EventType("X"), 3.0)
        before = Event(EventType("X"), 0.5)
        after = Event(EventType("X"), 6.0)
        assert guard.violates(binding, inside, 10.0, 1.0)
        assert not guard.violates(binding, before, 10.0, 1.0)
        assert not guard.violates(binding, after, 10.0, 1.0)

    def test_trailing_guard_respects_window(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "X"], window=4.0, negated=[1])
        )
        guard = nfa.stages[-1].guards_after[0]
        binding = {"p1": Event(A, 1.0)}
        in_window = Event(EventType("X"), 4.5)
        out_of_window = Event(EventType("X"), 5.5)
        assert guard.violates(binding, in_window, 4.0, 1.0)
        assert not guard.violates(binding, out_of_window, 4.0, 1.0)


class TestSeqOrder:
    def test_order_by_timestamp_then_id(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B"], window=10.0))
        first = Event(A, 1.0)
        pm = PartialMatch.of("p1", first)
        later = Event(EventType("B"), 2.0)
        same_time_later_id = Event(EventType("B"), 1.0)
        assert seq_order_allows(pm, nfa.stages, 1, later)
        assert seq_order_allows(pm, nfa.stages, 1, same_time_later_id)

    def test_order_rejects_earlier_event(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B"], window=10.0))
        later = Event(A, 2.0)
        pm = PartialMatch.of("p1", later)
        earlier = Event(EventType("B"), 1.0)
        assert not seq_order_allows(pm, nfa.stages, 1, earlier)

    def test_stage_zero_always_allowed(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B"], window=10.0))
        assert seq_order_allows(
            PartialMatch.empty(), nfa.stages, 0, Event(A, 0.0)
        )


class TestStageAccepts:
    def test_accepts_checks_conditions_only(self):
        cond = AttributeCondition("p1", "x", "<", "p2", "x")
        nfa = compile_pattern(
            Pattern.sequence(["A", "B"], window=1.0, condition=cond)
        )
        pm = PartialMatch.of("p1", Event(A, 0.0, {"x": 1}))
        good = Event(EventType("B"), 100.0, {"x": 2})  # window ignored here
        bad = Event(EventType("B"), 0.5, {"x": 0})
        assert nfa.stages[1].accepts(pm, good)
        assert not nfa.stages[1].accepts(pm, bad)
