"""Tests for the baseline parallelization strategies."""

import pytest

from tests.conftest import make_stream, reference_matches
from repro.core import Pattern
from repro.engine import assert_equivalent
from repro.baselines import (
    JSQEngine,
    LLSFEngine,
    RIPEngine,
    RREngine,
    StateParallelEngine,
)

PATTERNS = [
    Pattern.sequence(["A", "B", "C"], window=6.0),
    Pattern.sequence(["A", "B", "C"], window=5.0, kleene=[1]),
    Pattern.sequence(["A", "X", "B"], window=6.0, negated=[1]),
    Pattern.sequence(["A", "B", "X"], window=5.0, negated=[2]),
]

ENGINES = [RIPEngine, RREngine, JSQEngine, LLSFEngine]


@pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.describe())
@pytest.mark.parametrize("engine_cls", ENGINES)
def test_partitioned_equivalence(pattern, engine_cls):
    events = make_stream(num_events=600, seed=21)
    reference = reference_matches(pattern, events)
    got = engine_cls(pattern, num_units=4).run(events)
    assert_equivalent(reference, got, engine_cls.__name__)


@pytest.mark.parametrize("pattern", PATTERNS[:2], ids=lambda p: p.describe())
def test_state_parallel_equivalence(pattern):
    events = make_stream(num_events=500, seed=22)
    reference = reference_matches(pattern, events)
    engine = StateParallelEngine(pattern)
    got = engine.run(events)
    assert_equivalent(reference, got, "state-parallel")
    assert engine.num_agents == 2


class TestRIPStructure:
    def test_chunks_cover_stream_without_loss(self):
        pattern = Pattern.sequence(["A", "B"], window=4.0)
        events = make_stream(num_events=300, seed=23)
        engine = RIPEngine(pattern, num_units=3, chunk_size=50)
        partitions = list(engine.partitions(events))
        assert sum(
            1 for p in partitions
        ) == (len(events) + 49) // 50
        # Ownership ranges tile the stream.
        owned = 0
        for partition in partitions:
            owned += sum(
                1
                for event in events
                if (partition.own_start, partition.own_start_id)
                <= (event.timestamp, event.event_id)
                < (partition.own_end, partition.own_end_id)
            )
        assert owned == len(events)

    def test_duplication_grows_with_window(self):
        events = make_stream(num_events=400, seed=24)

        def dup(window):
            engine = RIPEngine(
                Pattern.sequence(["A", "B"], window=window),
                num_units=3,
                chunk_size=40,
            )
            engine.run(events)
            return engine.metrics.duplication_factor

        assert dup(20.0) > dup(2.0)

    def test_round_robin_assignment(self):
        pattern = Pattern.sequence(["A", "B"], window=2.0)
        engine = RIPEngine(pattern, num_units=3, chunk_size=10)
        events = make_stream(num_events=100, seed=25)
        engine.run(events)
        assert all(count > 0 for count in engine.metrics.per_unit_events)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            RIPEngine(Pattern.sequence(["A", "B"], window=1.0), 2, chunk_size=0)


class TestWindowSegments:
    def test_duplication_factor_about_two(self):
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        engine = LLSFEngine(pattern, num_units=4)
        engine.run(make_stream(num_events=600, seed=26))
        assert 1.5 <= engine.metrics.duplication_factor <= 2.2

    def test_llsf_balances_load(self):
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        engine = LLSFEngine(pattern, num_units=2)
        engine.run(make_stream(num_events=800, seed=27))
        loads = engine.metrics.per_unit_comparisons
        assert min(loads) > 0
        assert max(loads) < 5 * max(min(loads), 1)

    def test_jsq_uses_all_units(self):
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        engine = JSQEngine(pattern, num_units=3)
        engine.run(make_stream(num_events=900, seed=28))
        assert all(count > 0 for count in engine.metrics.per_unit_events)

    def test_empty_stream(self):
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        assert RREngine(pattern, 2).run([]) == []

    def test_metrics_populated(self):
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        engine = RREngine(pattern, 3)
        engine.run(make_stream(num_events=300, seed=29))
        metrics = engine.metrics
        assert metrics.events_ingested == 300
        assert metrics.partitions > 1
        assert metrics.comparisons > 0
        assert metrics.matches_emitted <= metrics.matches_before_dedup

    def test_invalid_unit_count(self):
        with pytest.raises(ValueError):
            RREngine(Pattern.sequence(["A", "B"], window=1.0), 0)
