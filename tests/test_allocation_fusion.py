"""Tests for outer allocation plans and agent fusion (Algorithm 2)."""

import pytest

from repro.core import Pattern, PatternError, compile_pattern
from repro.core.errors import AllocationError
from repro.costmodel import WorkloadStatistics
from repro.hypersonic import allocate_units, plan_with_fusion
from repro.hypersonic.fusion import FusedAgentCore, build_agent
from repro.hypersonic.items import ItemKind, WorkItem
from repro.core import Event, EventType, PartialMatch

A, B, C, D = (EventType(n) for n in "ABCD")


def ev(type_, t):
    return Event(type_, t)


def stats_for(nfa, work=None):
    n = nfa.num_stages
    return WorkloadStatistics(
        rates=tuple(1.0 for _ in range(n)),
        selectivities=(1.0,) + tuple(0.1 for _ in range(n - 1)),
        stage_work=tuple(work) if work else (),
    )


class TestAllocateUnits:
    def test_cost_scheme_follows_load(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        plan = allocate_units(
            nfa, stats_for(nfa, work=[0, 10, 40]), total_units=10
        )
        assert plan.total_units == 10
        assert plan.per_agent[1] > plan.per_agent[0]
        assert plan.scheme == "cost"

    def test_equal_scheme(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        plan = allocate_units(nfa, stats_for(nfa), 7, scheme="equal")
        assert plan.per_agent == (4, 3)

    def test_unknown_scheme(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        with pytest.raises(AllocationError):
            allocate_units(nfa, stats_for(nfa), 4, scheme="magic")

    def test_too_few_units(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        with pytest.raises(AllocationError):
            allocate_units(nfa, stats_for(nfa), 1)

    def test_underprovisioned_detection(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "C", "D"], window=2.0)
        )
        plan = allocate_units(
            nfa, stats_for(nfa, work=[0, 1, 1, 100]), total_units=6
        )
        assert 2 not in plan.underprovisioned() or plan.per_agent[2] < 2
        assert any(count < 2 for count in plan.per_agent) == bool(
            plan.underprovisioned()
        )


class TestFusionPlanning:
    def test_no_fusion_when_well_provisioned(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        plan = plan_with_fusion(nfa, stats_for(nfa), total_units=8)
        assert plan.num_agents == 2
        assert plan.fused_groups() == ()

    def test_underprovisioned_agents_fuse(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "C", "D"], window=2.0)
        )
        plan = plan_with_fusion(
            nfa, stats_for(nfa, work=[0, 1, 1, 100]), total_units=6
        )
        assert plan.num_agents < 3
        assert sum(plan.per_agent) == 6
        assert all(count >= 1 for count in plan.per_agent)

    def test_forced_pairs(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "C", "D"], window=2.0)
        )
        plan = plan_with_fusion(
            nfa, stats_for(nfa), total_units=8, force_pairs=((1, 2),)
        )
        assert (1, 2) in plan.groups

    def test_kleene_stage_not_fusable(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "C", "D"], window=2.0, kleene=[1])
        )
        plan = plan_with_fusion(
            nfa, stats_for(nfa), total_units=8, force_pairs=((1, 2),)
        )
        assert (1, 2) not in plan.groups


class TestFusedAgentCore:
    def build(self, window=10.0):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "C", "D"], window=window)
        )
        return FusedAgentCore(
            agent_index=0,
            stages=nfa.stages,
            first_stage_index=1,
            window=window,
            watermark=lambda: float("-inf"),
            is_last=False,
        )

    def test_joint_functionality(self):
        fused = self.build()
        seed = WorkItem(ItemKind.MATCH, PartialMatch.of("p1", ev(A, 1)))
        fused.process(seed, unit_id=0)
        r_b = fused.process(WorkItem(ItemKind.EVENT, ev(B, 2)), unit_id=0)
        # (A, B) stays internal: written to MB2, not emitted.
        assert r_b.emitted_down == []
        r_c = fused.process(WorkItem(ItemKind.EVENT2, ev(C, 3)), unit_id=0)
        assert len(r_c.emitted_down) == 1

    def test_internal_result_joins_eb2_immediately(self):
        fused = self.build()
        fused.process(WorkItem(ItemKind.EVENT2, ev(C, 3)), unit_id=0)
        fused.process(WorkItem(ItemKind.EVENT, ev(B, 2)), unit_id=0)
        receipt = fused.process(
            WorkItem(ItemKind.MATCH, PartialMatch.of("p1", ev(A, 1))),
            unit_id=0,
        )
        # The (A,B) intermediate must meet the buffered C in the same call.
        assert len(receipt.emitted_down) == 1

    def test_minimum_two_workers_suffice(self):
        fused = self.build()
        assert fused.pop("event") is None
        fused.es.push(WorkItem(ItemKind.EVENT, ev(B, 1)))
        fused.es2.push(WorkItem(ItemKind.EVENT2, ev(C, 2)))
        assert fused.pop("event").kind is ItemKind.EVENT
        assert fused.pop("event").kind is ItemKind.EVENT2

    def test_guarded_stage_rejected(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "X", "B", "C"], window=5.0, negated=[1])
        )
        with pytest.raises(PatternError):
            FusedAgentCore(
                agent_index=0, stages=nfa.stages, first_stage_index=1,
                window=5.0, watermark=lambda: 0.0, is_last=False,
            )

    def test_snapshot_covers_both_pairs(self):
        fused = self.build()
        fused.process(
            WorkItem(ItemKind.MATCH, PartialMatch.of("p1", ev(A, 1))),
            unit_id=0,
        )
        fused.process(WorkItem(ItemKind.EVENT, ev(B, 2)), unit_id=0)
        snapshot = fused.snapshot()
        assert snapshot.eb_items == 1   # B in EB1
        assert snapshot.mb_items == 2   # seed in MB1 + (A,B) in MB2


class TestBuildAgent:
    def test_single_stage_builds_agent_core(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        agent = build_agent((1,), 0, nfa, lambda: 0.0, False, None)
        assert type(agent).__name__ == "AgentCore"

    def test_pair_builds_fused(self):
        nfa = compile_pattern(
            Pattern.sequence(["A", "B", "C", "D"], window=2.0)
        )
        agent = build_agent((1, 2), 0, nfa, lambda: 0.0, False, None)
        assert isinstance(agent, FusedAgentCore)
