"""Tests for the Theorem 6 memory model."""

import pytest

from repro.costmodel import (
    CostParameters,
    WorkloadStatistics,
    expected_memory,
    total_expected_memory,
)


def stats(rates=(1.0, 1.0, 1.0), sels=(1.0, 0.1, 0.1), sizes=()):
    return WorkloadStatistics(
        rates=rates, selectivities=sels, event_sizes=sizes
    )


class TestExpectedMemory:
    def test_one_entry_per_agent(self):
        memories = expected_memory(stats(), window=5.0)
        assert len(memories) == 2

    def test_agb_accumulates_upstream_types(self):
        memories = expected_memory(
            stats(sizes=(10.0, 10.0, 10.0)), window=5.0
        )
        # Agent 1's AGB covers three types, agent 0's only two.
        assert memories[1].agb_bytes > memories[0].agb_bytes

    def test_agb_formula(self):
        memories = expected_memory(
            stats(rates=(2.0, 1.0, 1.0), sizes=(10.0, 20.0, 30.0)),
            window=5.0,
        )
        # Agent 0: own type (stage 1): 1*20*5 + upstream (stage 0): 2*10*5
        assert memories[0].agb_bytes == pytest.approx(100 + 100)

    def test_eb_is_pointers(self):
        costs = CostParameters(pointer_size=8)
        memories = expected_memory(
            stats(rates=(1.0, 3.0, 1.0)), window=5.0, costs=costs
        )
        assert memories[0].eb_bytes == pytest.approx(3.0 * 5.0 * 8)

    def test_mb_scales_with_match_size(self):
        shallow = expected_memory(stats(), window=5.0)
        deep = expected_memory(
            stats(sels=(1.0, 0.5, 0.5)), window=5.0
        )
        assert deep[1].mb_bytes > shallow[1].mb_bytes

    def test_total_is_sum(self):
        total = total_expected_memory(stats(), window=5.0)
        assert total == pytest.approx(
            sum(m.total for m in expected_memory(stats(), window=5.0))
        )

    def test_memory_grows_with_window(self):
        small = total_expected_memory(stats(), window=2.0)
        large = total_expected_memory(stats(), window=20.0)
        assert large > small

    def test_memory_grows_with_rates(self):
        slow = total_expected_memory(stats(rates=(1, 1, 1)), window=5.0)
        fast = total_expected_memory(stats(rates=(3, 3, 3)), window=5.0)
        assert fast > slow
