"""Public-API surface checks: exports exist, are documented, and the
error hierarchy is coherent."""

import importlib
import inspect

import pytest

import repro
from repro.core import errors


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.hypersonic",
    "repro.costmodel",
    "repro.baselines",
    "repro.simulator",
    "repro.runtime",
    "repro.datasets",
    "repro.workloads",
    "repro.bench",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} needs a module docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES[:-1])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_version():
    assert repro.__version__ == "1.0.0"


def test_public_classes_documented():
    undocumented = []
    for module_name in PUBLIC_MODULES[:-1]:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_classes = [
            obj
            for obj in vars(errors).values()
            if inspect.isclass(obj) and issubclass(obj, Exception)
        ]
        assert len(error_classes) >= 7
        for cls in error_classes:
            assert issubclass(cls, errors.ReproError)

    def test_catchable_with_single_except(self):
        try:
            raise errors.PatternError("boom")
        except errors.ReproError as caught:
            assert "boom" in str(caught)
