"""Shared fixtures and stream factories for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import Event, EventType, Pattern


TYPE_NAMES = ("A", "B", "C", "D", "X")
TYPES = {name: EventType(name) for name in TYPE_NAMES}


def make_stream(
    num_events: int = 400,
    seed: int = 0,
    type_names: tuple[str, ...] = TYPE_NAMES,
    attr_range: int = 10,
    gap: float = 1.0,
) -> list[Event]:
    """Deterministic random in-order stream used across the suite."""
    rng = random.Random(seed)
    events = []
    timestamp = 0.0
    for _ in range(num_events):
        timestamp += rng.random() * gap
        name = type_names[rng.randrange(len(type_names))]
        events.append(
            Event(
                TYPES.get(name, EventType(name)),
                timestamp,
                {"x": rng.randrange(attr_range)},
            )
        )
    return events


@pytest.fixture
def stream() -> list[Event]:
    return make_stream()


@pytest.fixture
def small_stream() -> list[Event]:
    return make_stream(num_events=120, seed=3)


@pytest.fixture
def seq_pattern() -> Pattern:
    return Pattern.sequence(["A", "B", "C"], window=6.0)


@pytest.fixture
def kleene_pattern() -> Pattern:
    return Pattern.sequence(["A", "B", "C"], window=5.0, kleene=[1])


@pytest.fixture
def negation_pattern() -> Pattern:
    return Pattern.sequence(["A", "X", "B", "C"], window=6.0, negated=[1])


@pytest.fixture
def trailing_negation_pattern() -> Pattern:
    return Pattern.sequence(["A", "B", "X"], window=5.0, negated=[2])


def reference_matches(pattern: Pattern, events) -> list:
    """Ground-truth matches via the sequential engine (incl. close() and
    the pattern's selection/consumption policies)."""
    from repro.core.policies import resolve_matches
    from repro.engine import SequentialEngine

    engine = SequentialEngine(pattern)
    matches = []
    for event in events:
        matches.extend(engine.process(event))
    matches.extend(engine.close())
    return resolve_matches(pattern, matches)
