"""Property-style tests for the uniform-reservoir LatencyAccumulator.

The accumulator's percentiles come from a bounded uniform reservoir
(Algorithm R); these tests drive it with 10k+ random samples from several
distributions/seeds and compare against exact ``statistics.quantiles``.
The tolerance is expressed in *rank* space: the reservoir estimate of the
q-th percentile must land between the exact (q-eps)- and (q+eps)-th
percentiles, which is distribution-independent.
"""

import random
import statistics

import pytest

from repro.simulator.metrics import LatencyAccumulator

N_SAMPLES = 12_000
RANK_TOLERANCE = 0.03  # capacity 4096 => p95 rank stderr ~0.0034; ~9 sigma


def _draw(rng: random.Random, shape: str, n: int) -> list[float]:
    if shape == "uniform":
        return [rng.uniform(0.0, 1000.0) for _ in range(n)]
    if shape == "exponential":
        return [rng.expovariate(1 / 50.0) for _ in range(n)]
    if shape == "lognormal":
        return [rng.lognormvariate(3.0, 1.2) for _ in range(n)]
    if shape == "drifting":
        # Latency ramping up over the run — the regime the old strided
        # decimation biased (early samples over-weighted => p95 too low).
        return [rng.uniform(0.0, 10.0) + 0.02 * i for i in range(n)]
    raise AssertionError(shape)


def _exact_percentile(data: list[float], q: float) -> float:
    ordered = sorted(data)
    index = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[index]


class TestReservoirAgainstExactQuantiles:
    @pytest.mark.parametrize("shape", [
        "uniform", "exponential", "lognormal", "drifting",
    ])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_percentiles_within_rank_tolerance(self, shape, seed):
        rng = random.Random(seed)
        data = _draw(rng, shape, N_SAMPLES)
        acc = LatencyAccumulator(rng=random.Random(seed + 100))
        for value in data:
            acc.add(value)
        # Exact reference grid via statistics.quantiles (1000 cut points).
        grid = statistics.quantiles(data, n=1000, method="inclusive")
        for q in (0.5, 0.9, 0.95, 0.99):
            estimate = acc.percentile(q)
            low_rank = max(0.001, q - RANK_TOLERANCE)
            high_rank = min(0.999, q + RANK_TOLERANCE)
            low = grid[int(low_rank * 1000) - 1]
            high = grid[int(high_rank * 1000) - 1]
            assert low <= estimate <= high, (
                f"{shape}/seed {seed}: p{q*100:.0f} estimate {estimate} "
                f"outside exact rank band [{low}, {high}]"
            )

    def test_mean_and_max_stay_exact(self):
        rng = random.Random(7)
        data = _draw(rng, "lognormal", N_SAMPLES)
        acc = LatencyAccumulator(capacity=256, rng=random.Random(7))
        for value in data:
            acc.add(value)
        assert acc.count == N_SAMPLES
        assert acc.mean == pytest.approx(statistics.fmean(data))
        assert acc.max_value == max(data)

    def test_reservoir_bounded_and_uniform_fill(self):
        acc = LatencyAccumulator(capacity=64, rng=random.Random(0))
        for value in range(10_000):
            acc.add(float(value))
        assert len(acc._reservoir) == 64

    def test_deterministic_given_rng_seed(self):
        def run() -> list[float]:
            acc = LatencyAccumulator(capacity=128, rng=random.Random(42))
            data_rng = random.Random(1)
            for _ in range(5000):
                acc.add(data_rng.random())
            return list(acc._reservoir)

        assert run() == run()

    def test_small_counts_are_exact(self):
        acc = LatencyAccumulator(capacity=4096, rng=random.Random(0))
        data = [float(v) for v in range(100)]
        for value in data:
            acc.add(value)
        # Below capacity the reservoir holds everything: percentile exact.
        assert acc.percentile(0.95) == _exact_percentile(data, 0.95)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LatencyAccumulator(capacity=0)


class TestInterleavedPercentileCache:
    """Regression guard for the sorted-reservoir cache: every mutation of
    the reservoir (both the growing branch and the replacement branch)
    must invalidate the cache, so percentile reads interleaved with adds
    always see the current samples."""

    @staticmethod
    def _ceil_percentile(data: list[float], q: float) -> float:
        # Same index convention as LatencyAccumulator.percentile.
        import math
        ordered = sorted(data)
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def test_percentile_reflects_adds_below_capacity(self):
        acc = LatencyAccumulator(capacity=4096, rng=random.Random(0))
        data: list[float] = []
        rng = random.Random(9)
        for i in range(500):
            value = rng.uniform(0.0, 100.0)
            acc.add(value)
            data.append(value)
            if i % 7 == 0:
                # Below capacity the reservoir is exact; a stale cache
                # would return the percentile of an older prefix.
                assert acc.percentile(0.5) == self._ceil_percentile(data, 0.5)
                assert acc.percentile(0.95) == self._ceil_percentile(data, 0.95)

    def test_percentile_tracks_replacements_above_capacity(self):
        # Small capacity forces the replacement branch; after a regime
        # shift the interleaved reads must drift to the new regime rather
        # than stay pinned to a pre-shift cached sort.
        acc = LatencyAccumulator(capacity=64, rng=random.Random(3))
        for _ in range(1000):
            acc.add(1.0)
        assert acc.percentile(0.5) == 1.0
        readings = []
        for _ in range(50_000):
            acc.add(1000.0)
            readings.append(acc.percentile(0.5))
        assert readings[-1] == 1000.0
        assert readings == sorted(readings) or len(set(readings)) > 1
