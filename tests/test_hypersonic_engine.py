"""End-to-end equivalence tests: hybrid engine vs sequential baseline."""

import pytest

from tests.conftest import make_stream, reference_matches
from repro.core import (
    AttributeCondition,
    Pattern,
    PatternError,
)
from repro.core.errors import AllocationError
from repro.engine import assert_equivalent
from repro.hypersonic import HypersonicConfig, HypersonicEngine, detect_hybrid


PATTERNS = [
    Pattern.sequence(["A", "B"], window=5.0),
    Pattern.sequence(["A", "B", "C"], window=6.0),
    Pattern.sequence(
        ["A", "B", "C", "D"],
        window=8.0,
        condition=AttributeCondition("p1", "x", "<", "p4", "x"),
    ),
    Pattern.sequence(["A", "B", "C"], window=5.0, kleene=[1]),
    Pattern.sequence(["A", "B", "C"], window=6.0, kleene=[2]),
    Pattern.sequence(["A", "X", "B", "C"], window=6.0, negated=[1]),
    Pattern.sequence(["A", "B", "X"], window=5.0, negated=[2]),
    Pattern.sequence(["A", "B", "X", "C"], window=6.0, kleene=[1], negated=[2]),
]


@pytest.mark.parametrize("pattern", PATTERNS, ids=lambda p: p.describe())
def test_matches_sequential(pattern):
    events = make_stream(num_events=500, seed=11)
    reference = reference_matches(pattern, events)
    got = HypersonicEngine(pattern, num_units=8).run(events)
    assert_equivalent(reference, got, pattern.describe())


@pytest.mark.parametrize(
    "config",
    [
        HypersonicConfig(agent_dynamic=True),
        HypersonicConfig(role_dynamic=False),
        HypersonicConfig(allocation="equal"),
        HypersonicConfig(agent_dynamic=True, allocation="equal", seed=99),
    ],
    ids=["agent-dynamic", "role-static", "equal-alloc", "agdyn-equal-s99"],
)
def test_config_variants_match_sequential(config):
    pattern = Pattern.sequence(["A", "B", "C", "D"], window=7.0)
    events = make_stream(num_events=500, seed=12)
    reference = reference_matches(pattern, events)
    got = HypersonicEngine(pattern, num_units=8, config=config).run(events)
    assert_equivalent(reference, got)


@pytest.mark.parametrize("units", [2, 3, 5, 16])
def test_unit_counts(units):
    pattern = Pattern.sequence(["A", "B", "C"], window=6.0)
    events = make_stream(num_events=400, seed=13)
    reference = reference_matches(pattern, events)
    got = HypersonicEngine(pattern, num_units=units).run(events)
    assert_equivalent(reference, got, f"units={units}")


def test_fusion_matches_sequential():
    pattern = Pattern.sequence(["A", "B", "C", "D"], window=6.0)
    events = make_stream(num_events=400, seed=14)
    reference = reference_matches(pattern, events)
    config = HypersonicConfig(force_fusion_pairs=((1, 2),))
    engine = HypersonicEngine(pattern, num_units=6, config=config)
    got = engine.run(events)
    assert_equivalent(reference, got, "fusion")
    assert engine.fusion_plan is not None
    assert (1, 2) in engine.fusion_plan.groups


def test_detect_hybrid_wrapper():
    pattern = Pattern.sequence(["A", "B"], window=4.0)
    events = make_stream(num_events=200, seed=15)
    reference = reference_matches(pattern, events)
    got = detect_hybrid(pattern, events, num_units=4)
    assert_equivalent(reference, got)


def test_deterministic_given_seed():
    pattern = Pattern.sequence(["A", "B", "C"], window=6.0)
    events = make_stream(num_events=300, seed=16)
    first = HypersonicEngine(
        pattern, 8, config=HypersonicConfig(agent_dynamic=True)
    ).run(events)
    second = HypersonicEngine(
        pattern, 8, config=HypersonicConfig(agent_dynamic=True)
    ).run(events)
    assert {m.key for m in first} == {m.key for m in second}
    assert len(first) == len(second)


class TestEngineValidation:
    def test_non_seq_rejected(self):
        with pytest.raises(PatternError):
            HypersonicEngine(Pattern.conjunction(["A", "B"], window=1.0), 4)

    def test_single_stage_rejected(self):
        with pytest.raises(PatternError):
            HypersonicEngine(Pattern.sequence(["A"], window=1.0), 4)

    def test_kleene_first_rejected(self):
        with pytest.raises(PatternError):
            HypersonicEngine(
                Pattern.sequence(["A", "B"], window=1.0, kleene=[0]), 4
            )

    def test_zero_units_rejected(self):
        with pytest.raises(AllocationError):
            HypersonicEngine(Pattern.sequence(["A", "B"], window=1.0), 0)

    def test_run_twice_rejected(self):
        engine = HypersonicEngine(Pattern.sequence(["A", "B"], window=1.0), 4)
        engine.run(make_stream(num_events=50, seed=17))
        with pytest.raises(AllocationError):
            engine.run(make_stream(num_events=50, seed=17))


class TestMetrics:
    def test_counters_populated(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=6.0)
        events = make_stream(num_events=300, seed=18)
        engine = HypersonicEngine(pattern, 6)
        matches = engine.run(events)
        metrics = engine.metrics
        assert metrics.events_ingested == len(events)
        assert metrics.matches_emitted == len(matches)
        assert metrics.items_processed > 0
        assert metrics.comparisons > 0
        assert metrics.fragment_locks > 0
        assert metrics.peak_memory_bytes > 0
        assert len(metrics.per_agent_items) == 2

    def test_allocation_plan_exposed(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=6.0)
        engine = HypersonicEngine(pattern, 6)
        engine.run(make_stream(num_events=200, seed=19))
        assert engine.allocation_plan is not None
        assert sum(engine.allocation_plan.per_agent) == 6
