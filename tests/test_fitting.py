"""Tests for closed-loop cost-model fitting (`repro.costmodel.fitting`).

Three layers:

* unit tests of the NNLS fit and its trace-replay entry points;
* hypothesis properties — planted-parameter recovery, finite/non-negative
  outputs, and the never-regress guarantee on arbitrary inputs;
* the pinned-seed end-to-end loop: a deliberately mis-costed deployment
  (lock cost x20) whose calibration error `autotune` strictly reduces
  without changing the match set.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Pattern
from repro.costmodel import (
    CostParameters,
    LOAD_FEATURE_NAMES,
    autotune,
    fit_cost_parameters,
    fit_from_trace,
    share_error,
)
from repro.costmodel.fitting import (
    DEFAULT_RIDGE,
    observed_shares,
    plan_features,
    predicted_shares,
)
from repro.obs import TraceRecorder, read_jsonl, write_jsonl
from repro.simulator import simulate

from tests.conftest import make_stream


def coefficients(params: CostParameters) -> list[float]:
    return [
        params.comparison,
        params.lock,
        params.queue_push,
        params.comparison * params.cache_penalty,
        params.sync_overhead,
    ]


def traced_run(pattern, events, *, costs=None, model_costs=None, cores=4,
               seed=7):
    recorder = TraceRecorder()
    result = simulate(
        "hypersonic", pattern, events, num_cores=cores, costs=costs,
        model_costs=model_costs, seed=seed, tracer=recorder,
    )
    return result, recorder


# --------------------------------------------------------------------- #
# Unit: the fit itself                                                   #
# --------------------------------------------------------------------- #


class TestFitCostParameters:
    def test_exact_recovery_two_agents(self):
        planted = CostParameters(comparison=2.0, lock=0.5, queue_push=0.1)
        rows = [(10.0, 4.0, 2.0, 0.0, 1.0), (30.0, 1.0, 5.0, 0.0, 1.0)]
        observed = predicted_shares(rows, coefficients(planted))
        fit = fit_cost_parameters(rows, observed, ridge=0.0)
        assert fit.error_after <= fit.error_before
        assert fit.error_after < 1e-3
        for pred, obs in zip(fit.predicted_after, observed):
            assert pred == pytest.approx(obs, abs=1e-3)

    def test_incumbent_wins_when_already_optimal(self):
        planted = CostParameters(comparison=1.0, lock=0.12, queue_push=0.05)
        rows = [(10.0, 4.0, 2.0, 0.0, 1.0), (30.0, 1.0, 5.0, 0.0, 1.0)]
        observed = predicted_shares(rows, coefficients(planted))
        fit = fit_cost_parameters(rows, observed, base=planted)
        assert fit.parameters == planted
        assert fit.error_after == fit.error_before

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="feature rows"):
            fit_cost_parameters([(1.0,) * 5], [0.5, 0.5])

    def test_negative_ridge_raises(self):
        with pytest.raises(ValueError, match="ridge"):
            fit_cost_parameters([(1.0,) * 5], [1.0], ridge=-1.0)

    def test_preserves_memory_constants(self):
        base = CostParameters(pointer_size=16, match_overhead=64)
        rows = [(10.0, 4.0, 2.0, 0.0, 1.0), (30.0, 1.0, 5.0, 0.0, 1.0)]
        fit = fit_cost_parameters(rows, [0.2, 0.8], base=base, ridge=0.0)
        assert fit.parameters.pointer_size == 16
        assert fit.parameters.match_overhead == 64

    def test_feature_names_match_model(self):
        rows = [(10.0, 4.0, 2.0, 0.0, 1.0), (30.0, 1.0, 5.0, 0.0, 1.0)]
        fit = fit_cost_parameters(rows, [0.5, 0.5])
        assert fit.feature_names == LOAD_FEATURE_NAMES

    def test_as_dict_round_trips_to_json_types(self):
        rows = [(10.0, 4.0, 2.0, 0.0, 1.0), (30.0, 1.0, 5.0, 0.0, 1.0)]
        payload = fit_cost_parameters(rows, [0.3, 0.7]).as_dict()
        assert set(payload) >= {
            "parameters", "observed_shares", "error_before", "error_after",
            "improved",
        }
        assert isinstance(payload["improved"], bool)

    def test_unrepresentable_cache_vertex_is_resolved(self):
        """Regression: the underdetermined NNLS can land on an exact
        solution with comparison == 0 but a positive cache coefficient —
        unrepresentable as ``comparison * cache_penalty``, so the mapped
        parameters used to silently forfeit that column and miss the
        observed shares.  The fit must re-solve without the cache column
        and recover the shares exactly."""
        rows = [
            (1.0, 1.0, 0.0, 0.0, 1.0),
            (0.5, 1.0, 5.0, 0.0, 1.0),
            (2.0, 1.0, 0.0, 2.0, 1.0),
        ]
        planted = CostParameters(
            comparison=1.0, lock=0.0, queue_push=1.0,
            cache_penalty=0.0, sync_overhead=0.0,
        )
        observed = predicted_shares(rows, [
            planted.comparison, planted.lock, planted.queue_push,
            planted.comparison * planted.cache_penalty,
            planted.sync_overhead,
        ])
        fit = fit_cost_parameters(rows, observed, ridge=0.0)
        for pred, obs in zip(fit.predicted_after, observed):
            assert abs(pred - obs) < 1e-9


class TestShareError:
    def test_zero_for_perfect_prediction(self):
        assert share_error([0.25, 0.75], [0.25, 0.75]) == 0.0

    def test_relative_to_observed(self):
        assert share_error([0.2, 0.8], [0.4, 0.6]) == pytest.approx(
            (0.2 / 0.4 + 0.2 / 0.6) / 2
        )

    def test_infinite_penalty_for_phantom_load(self):
        assert math.isinf(share_error([0.5, 0.5], [1.0, 0.0]))

    def test_empty_observed(self):
        assert share_error([], []) == 0.0


# --------------------------------------------------------------------- #
# Unit: trace-replay entry points                                        #
# --------------------------------------------------------------------- #


class TestTraceReplay:
    def test_fit_from_recorder(self, seq_pattern):
        events = make_stream(num_events=300, seed=5)
        _result, recorder = traced_run(seq_pattern, events)
        fit = fit_from_trace(recorder)
        assert fit is not None
        assert fit.error_after <= fit.error_before
        assert len(fit.observed_shares) == len(fit.features)

    def test_fit_from_jsonl_round_trip(self, seq_pattern, tmp_path):
        events = make_stream(num_events=300, seed=5)
        _result, recorder = traced_run(seq_pattern, events)
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), recorder)
        direct = fit_from_trace(recorder)
        replayed = fit_from_trace(read_jsonl(str(path)))
        assert replayed is not None
        assert replayed.parameters.as_dict() == pytest.approx(
            direct.parameters.as_dict()
        )
        assert replayed.error_after == pytest.approx(direct.error_after)

    def test_partition_trace_not_fittable(self, seq_pattern):
        events = make_stream(num_events=200, seed=5)
        recorder = TraceRecorder()
        simulate("rip", seq_pattern, events, num_cores=4, tracer=recorder)
        assert fit_from_trace(recorder) is None

    def test_plan_features_absent_on_empty_trace(self):
        assert plan_features([]) is None

    def test_observed_shares_queue_weight_validation(self, seq_pattern):
        events = make_stream(num_events=200, seed=5)
        _result, recorder = traced_run(seq_pattern, events)
        fit = fit_from_trace(recorder, queue_weight=0.3)
        assert fit is not None
        with pytest.raises(ValueError, match="queue_weight"):
            observed_shares({"per_agent": []}, queue_weight=1.5)


# --------------------------------------------------------------------- #
# Hypothesis properties                                                  #
# --------------------------------------------------------------------- #


@st.composite
def feature_matrices(draw):
    """Per-agent design matrices in the regime LoadModel emits: rows
    ``(comparisons, accesses, outputs, comparisons*m*W, 1.0)``."""
    agents = draw(st.integers(min_value=2, max_value=6))
    rows = []
    for _ in range(agents):
        comp = draw(st.floats(min_value=0.5, max_value=40.0))
        acc = draw(st.floats(min_value=0.1, max_value=20.0))
        out = draw(st.floats(min_value=0.0, max_value=10.0))
        cache = comp * draw(st.floats(min_value=0.0, max_value=5.0))
        rows.append((comp, acc, out, cache, 1.0))
    return rows


@st.composite
def planted_parameters(draw):
    return CostParameters(
        comparison=draw(st.floats(min_value=0.05, max_value=5.0)),
        lock=draw(st.floats(min_value=0.0, max_value=3.0)),
        queue_push=draw(st.floats(min_value=0.0, max_value=2.0)),
        cache_penalty=draw(st.floats(min_value=0.0, max_value=0.5)),
        sync_overhead=draw(st.floats(min_value=0.0, max_value=2.0)),
    )


@st.composite
def arbitrary_shares(draw, size):
    raw = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size, max_size=size,
        )
    )
    total = sum(raw)
    if total <= 0:
        return [1.0 / size] * size
    return [value / total for value in raw]


class TestFitProperties:
    @given(features=feature_matrices(), planted=planted_parameters())
    @settings(max_examples=60, deadline=None)
    def test_recovers_planted_load_shares(self, features, planted):
        """Observing shares generated by *planted* constants, the fit gets
        back within tolerance of those shares (the constants themselves are
        only identifiable up to the share-preserving directions)."""
        observed = predicted_shares(features, coefficients(planted))
        fit = fit_cost_parameters(features, observed, ridge=0.0)
        assert fit.error_after <= fit.error_before
        for pred, obs in zip(fit.predicted_after, observed):
            assert abs(pred - obs) < 0.05

    @given(
        features=feature_matrices(),
        data=st.data(),
        ridge=st.sampled_from([0.0, DEFAULT_RIDGE, 1.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_fitted_constants_finite_and_non_negative(
        self, features, data, ridge
    ):
        observed = data.draw(arbitrary_shares(len(features)))
        fit = fit_cost_parameters(features, observed, ridge=ridge)
        for value in fit.parameters.as_dict().values():
            assert math.isfinite(value)
            assert value >= 0

    @given(features=feature_matrices(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_fit_never_regresses_on_its_own_data(self, features, data):
        """error_after <= error_before for arbitrary observed shares; when
        least squares cannot win, the incumbent comes back untouched."""
        observed = data.draw(arbitrary_shares(len(features)))
        base = CostParameters(comparison=2.0, lock=0.3, queue_push=0.2)
        fit = fit_cost_parameters(features, observed, base=base)
        assert fit.error_after <= fit.error_before
        if fit.error_after == fit.error_before:
            assert fit.parameters == base

    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           lock=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=5, deadline=None)
    def test_autotune_never_increases_error(self, seed, lock):
        """The tuned model is never worse than the starting one on the
        measured trajectory, for arbitrary worlds and streams."""
        pattern = Pattern.sequence(["A", "B", "C"], window=6.0)
        events = make_stream(num_events=150, seed=seed)
        result = autotune(
            pattern, events, num_cores=4, max_rounds=2,
            costs=CostParameters(lock=lock), seed=7,
        )
        assert result.final_error <= result.initial_error
        assert len({r.matches for r in result.rounds}) == 1


# --------------------------------------------------------------------- #
# The pinned-seed closed loop                                            #
# --------------------------------------------------------------------- #


class TestAutotuneEndToEnd:
    #: A deployment whose lock cost is 20x the model default (0.12): the
    #: planner's Theorem-1 shares are visibly wrong until tuned.
    WORLD = CostParameters(lock=2.4)

    def test_miscosted_world_strictly_improves(self, seq_pattern):
        events = make_stream(num_events=400, seed=11)
        baseline, _ = traced_run(seq_pattern, events, costs=self.WORLD,
                                 cores=6)
        result = autotune(
            seq_pattern, events, num_cores=6, costs=self.WORLD, seed=7,
            max_rounds=4,
        )
        assert result.improved
        assert result.final_error < result.initial_error
        # Tuning re-plans but never changes which matches are found.
        assert result.best_round.matches == baseline.matches
        assert result.tuned != self.WORLD

    def test_round_zero_measures_the_initial_model(self, seq_pattern):
        events = make_stream(num_events=400, seed=11)
        result = autotune(
            seq_pattern, events, num_cores=4, costs=self.WORLD, seed=7,
        )
        assert result.rounds[0].round == 0
        assert result.rounds[0].parameters == self.WORLD

    def test_deterministic_across_invocations(self, seq_pattern):
        events = make_stream(num_events=300, seed=11)
        first = autotune(
            seq_pattern, events, num_cores=4, costs=self.WORLD, seed=7,
        )
        second = autotune(
            seq_pattern, events, num_cores=4, costs=self.WORLD, seed=7,
        )
        assert first.as_dict() == second.as_dict()

    def test_healthy_world_converges_quietly(self, seq_pattern):
        events = make_stream(num_events=300, seed=11)
        result = autotune(seq_pattern, events, num_cores=4, seed=7,
                          max_rounds=3)
        assert result.final_error <= result.initial_error
        assert result.rounds

    def test_explicit_model_start(self, seq_pattern):
        events = make_stream(num_events=300, seed=11)
        result = autotune(
            seq_pattern, events, num_cores=4, costs=self.WORLD,
            model=CostParameters(lock=2.4), seed=7, max_rounds=2,
        )
        # Starting from the true world costs, round 0 is already healthy.
        assert result.rounds[0].parameters == CostParameters(lock=2.4)

    def test_max_rounds_validation(self, seq_pattern):
        with pytest.raises(ValueError, match="max_rounds"):
            autotune(seq_pattern, [], num_cores=2, max_rounds=0)
