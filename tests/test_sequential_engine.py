"""Behavioural tests for the sequential baseline engine."""

import pytest

from repro.core import (
    AttributeCondition,
    AndCondition,
    EngineError,
    Event,
    EventType,
    Pattern,
)
from repro.engine import SequentialEngine, detect

A, B, C, D, X = (EventType(n) for n in "ABCDX")


def ev(type_, t, **attrs):
    return Event(type_, t, attrs)


class TestBasicSequence:
    def test_simple_triple(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=10.0)
        matches = detect(
            pattern, [ev(A, 1), ev(B, 2), ev(C, 3)]
        )
        assert len(matches) == 1
        match = matches[0]
        assert match["p1"].timestamp == 1
        assert match["p3"].timestamp == 3

    def test_skip_till_any_match_enumerates_combinations(self):
        pattern = Pattern.sequence(["A", "B"], window=10.0)
        matches = detect(
            pattern, [ev(A, 1), ev(A, 2), ev(B, 3), ev(B, 4)]
        )
        assert len(matches) == 4  # every (A, B) pair

    def test_order_enforced(self):
        pattern = Pattern.sequence(["A", "B"], window=10.0)
        assert detect(pattern, [ev(B, 1), ev(A, 2)]) == []

    def test_window_enforced(self):
        pattern = Pattern.sequence(["A", "B"], window=2.0)
        assert detect(pattern, [ev(A, 1), ev(B, 3.5)]) == []
        assert len(detect(pattern, [ev(A, 1), ev(B, 3.0)])) == 1

    def test_conditions_enforced(self):
        pattern = Pattern.sequence(
            ["A", "B"],
            window=10.0,
            condition=AttributeCondition("p1", "x", "<", "p2", "x"),
        )
        stream = [ev(A, 1, x=5), ev(B, 2, x=3), ev(B, 3, x=9)]
        matches = detect(pattern, stream)
        assert len(matches) == 1
        assert matches[0]["p2"]["x"] == 9

    def test_transitive_conditions(self):
        pattern = Pattern.sequence(
            ["A", "B", "C"],
            window=10.0,
            condition=AndCondition(
                (
                    AttributeCondition("p1", "x", "==", "p2", "x"),
                    AttributeCondition("p2", "x", "==", "p3", "x"),
                )
            ),
        )
        stream = [
            ev(A, 1, x=1), ev(A, 2, x=2),
            ev(B, 3, x=1), ev(B, 4, x=2),
            ev(C, 5, x=2),
        ]
        matches = detect(pattern, stream)
        assert len(matches) == 1
        assert matches[0]["p1"]["x"] == 2

    def test_irrelevant_types_ignored(self):
        pattern = Pattern.sequence(["A", "B"], window=10.0)
        matches = detect(pattern, [ev(A, 1), ev(X, 1.5), ev(B, 2)])
        assert len(matches) == 1

    def test_detected_at_is_completing_event_time(self):
        pattern = Pattern.sequence(["A", "B"], window=10.0)
        matches = detect(pattern, [ev(A, 1), ev(B, 7)])
        assert matches[0].detected_at == 7
        assert matches[0].latency == 0.0


class TestKleene:
    def test_subsequence_semantics(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=10.0, kleene=[1])
        matches = detect(
            pattern, [ev(A, 1), ev(B, 2), ev(B, 3), ev(B, 4), ev(C, 5)]
        )
        # Non-empty subsequences of three B events: 2^3 - 1 = 7.
        assert len(matches) == 7

    def test_kleene_requires_at_least_one(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=10.0, kleene=[1])
        assert detect(pattern, [ev(A, 1), ev(C, 2)]) == []

    def test_kleene_final_stage_growable(self):
        pattern = Pattern.sequence(["A", "B"], window=10.0, kleene=[1])
        matches = detect(pattern, [ev(A, 1), ev(B, 2), ev(B, 3)])
        # (B2), (B3), (B2, B3)
        assert len(matches) == 3

    def test_kleene_tuple_order(self):
        pattern = Pattern.sequence(["A", "B"], window=10.0, kleene=[1])
        matches = detect(pattern, [ev(A, 1), ev(B, 2), ev(B, 3)])
        longest = max(matches, key=lambda m: len(m["p2"]))
        times = [e.timestamp for e in longest["p2"]]
        assert times == sorted(times)

    def test_kleene_window_bounds_tuple(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=3.0, kleene=[1])
        matches = detect(
            pattern, [ev(A, 1), ev(B, 2), ev(C, 3.5), ev(B, 5)]
        )
        assert len(matches) == 1  # the B at t=5 is outside A's window


class TestNegation:
    def test_internal_negation_blocks(self):
        pattern = Pattern.sequence(["A", "X", "B"], window=10.0, negated=[1])
        assert detect(pattern, [ev(A, 1), ev(X, 2), ev(B, 3)]) == []
        assert len(detect(pattern, [ev(A, 1), ev(B, 3)])) == 1

    def test_internal_negation_outside_span_ok(self):
        pattern = Pattern.sequence(["A", "X", "B"], window=10.0, negated=[1])
        stream = [ev(X, 0.5), ev(A, 1), ev(B, 3), ev(X, 4)]
        assert len(detect(pattern, stream)) == 1

    def test_negation_condition_respected(self):
        cond = AttributeCondition("p1", "x", "==", "p2", "x")
        pattern = Pattern.sequence(
            ["A", "X", "B"], window=10.0, negated=[1], condition=cond
        )
        blocked = [ev(A, 1, x=1), ev(X, 2, x=1), ev(B, 3, x=0)]
        unblocked = [ev(A, 1, x=1), ev(X, 2, x=2), ev(B, 3, x=0)]
        assert detect(pattern, blocked) == []
        assert len(detect(pattern, unblocked)) == 1

    def test_trailing_negation_blocks_within_window(self):
        pattern = Pattern.sequence(["A", "B", "X"], window=5.0, negated=[2])
        engine = SequentialEngine(pattern)
        out = []
        for event in [ev(A, 1), ev(B, 2), ev(X, 3)]:
            out += engine.process(event)
        out += engine.close()
        assert out == []

    def test_trailing_negation_releases_after_window(self):
        pattern = Pattern.sequence(["A", "B", "X"], window=5.0, negated=[2])
        engine = SequentialEngine(pattern)
        out = []
        for event in [ev(A, 1), ev(B, 2), ev(X, 7)]:
            out += engine.process(event)
        # X at t=7 is past 1+5, so the match survives and was released by
        # the X event's arrival advancing time.
        out += engine.close()
        assert len(out) == 1

    def test_trailing_negation_released_at_close(self):
        pattern = Pattern.sequence(["A", "B", "X"], window=5.0, negated=[2])
        engine = SequentialEngine(pattern)
        out = []
        for event in [ev(A, 1), ev(B, 2)]:
            out += engine.process(event)
        assert out == []  # withheld: an X could still arrive
        out += engine.close()
        assert len(out) == 1


class TestConjunctionDisjunction:
    def test_and_any_order(self):
        pattern = Pattern.conjunction(["A", "B"], window=10.0)
        assert len(detect(pattern, [ev(B, 1), ev(A, 2)])) == 1
        assert len(detect(pattern, [ev(A, 1), ev(B, 2)])) == 1

    def test_and_window(self):
        pattern = Pattern.conjunction(["A", "B"], window=2.0)
        assert detect(pattern, [ev(B, 1), ev(A, 4)]) == []

    def test_and_conditions(self):
        pattern = Pattern.conjunction(
            ["A", "B"],
            window=10.0,
            condition=AttributeCondition("p1", "x", "<", "p2", "x"),
        )
        assert len(detect(pattern, [ev(B, 1, x=5), ev(A, 2, x=1)])) == 1
        assert detect(pattern, [ev(B, 1, x=1), ev(A, 2, x=5)]) == []

    def test_or_matches_each_alternative(self):
        pattern = Pattern.disjunction(["A", "B"], window=10.0)
        matches = detect(pattern, [ev(A, 1), ev(B, 2), ev(C, 3)])
        assert len(matches) == 2


class TestEngineLifecycle:
    def test_process_after_close_raises(self):
        engine = SequentialEngine(Pattern.sequence(["A", "B"], window=1.0))
        engine.close()
        with pytest.raises(EngineError):
            engine.process(ev(A, 1))

    def test_double_close_is_idempotent(self):
        engine = SequentialEngine(Pattern.sequence(["A", "B"], window=1.0))
        assert engine.close() == []
        assert engine.close() == []

    def test_purging_bounds_pools(self):
        pattern = Pattern.sequence(["A", "B"], window=2.0)
        engine = SequentialEngine(pattern)
        for i in range(200):
            engine.process(ev(A, float(i)))
        # Only the As within the last window (+ the new one) survive.
        assert engine.buffered_items() <= 4
        assert engine.stats.purged_partial_matches > 0

    def test_stats_counters(self):
        pattern = Pattern.sequence(["A", "B"], window=10.0)
        engine = SequentialEngine(pattern)
        for event in [ev(A, 1), ev(A, 2), ev(B, 3)]:
            engine.process(event)
        assert engine.stats.events_processed == 3
        assert engine.stats.comparisons >= 2
        assert engine.stats.matches_emitted == 2

    def test_memory_profile_counts_unique_payloads(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=10.0)
        engine = SequentialEngine(pattern)
        for event in [ev(A, 1), ev(B, 2)]:
            engine.process(event)
        pointers, payload = engine.memory_profile()
        assert pointers >= 3  # seed A + (A,B) partial
        assert payload == 2 * 64  # two unique events
