"""Tests for the cost model (Theorems 1–5) and allocation."""

import pytest

from repro.core import Pattern, compile_pattern
from repro.core.errors import AllocationError
from repro.costmodel import (
    CostParameters,
    LoadModel,
    WorkloadStatistics,
    average_match_sizes,
    estimate_statistics,
    kleene_binding_multiplicities,
    kleene_match_rate,
    match_arrival_rates,
    output_rates,
    proportional_allocation,
)
from tests.conftest import make_stream


def stats3(rates=(1.0, 1.0, 1.0), sels=(1.0, 0.1, 0.1)):
    return WorkloadStatistics(rates=rates, selectivities=sels)


class TestWorkloadStatistics:
    def test_validation(self):
        with pytest.raises(AllocationError):
            WorkloadStatistics(rates=(1.0,), selectivities=(0.5, 0.5))
        with pytest.raises(AllocationError):
            WorkloadStatistics(rates=(-1.0,), selectivities=(0.5,))
        with pytest.raises(AllocationError):
            WorkloadStatistics(rates=(1.0,), selectivities=(1.5,))

    def test_sizes_default(self):
        stats = stats3()
        assert stats.sizes_or_default() == (64.0, 64.0, 64.0)

    def test_num_stages(self):
        assert stats3().num_stages == 3


class TestTheorem2MatchRates:
    def test_first_agent_receives_e1(self):
        rates = match_arrival_rates(stats3(rates=(2.5, 1.0, 1.0)), window=10.0)
        assert rates[0] == 2.5

    def test_recursion_doubles_with_both_directions(self):
        # m_3 = 2 * m_2 * e_2 * s_2 * W
        stats = stats3(rates=(2.0, 3.0, 1.0), sels=(1.0, 0.25, 0.1))
        rates = match_arrival_rates(stats, window=4.0)
        assert rates[1] == pytest.approx(2 * 2.0 * 3.0 * 0.25 * 4.0)

    def test_single_stage_has_no_agents(self):
        stats = WorkloadStatistics(rates=(1.0,), selectivities=(1.0,))
        assert match_arrival_rates(stats, window=1.0) == []

    def test_rates_scale_with_window(self):
        small = match_arrival_rates(stats3(), window=1.0)
        large = match_arrival_rates(stats3(), window=10.0)
        assert large[1] == pytest.approx(10 * small[1])


class TestTheorem4Kleene:
    def test_reduces_to_identity_without_events(self):
        assert kleene_match_rate(5.0, rate=0.0, selectivity=0.5, window=10) == 5.0

    def test_geometric_series(self):
        # base = e*s*W = 0.5; truncated at e*W = 4 terms:
        # m = m_prev * (1 + 0.5 + 0.25 + 0.125 + 0.0625)
        value = kleene_match_rate(1.0, rate=0.4, selectivity=0.125, window=10.0)
        assert value == pytest.approx(1.0 + 0.5 + 0.25 + 0.125 + 0.0625)

    def test_base_one_sums_linearly(self):
        value = kleene_match_rate(1.0, rate=0.4, selectivity=0.25, window=10.0)
        assert value == pytest.approx(1.0 + 4.0)

    def test_divergent_base_is_capped(self):
        value = kleene_match_rate(1.0, rate=10.0, selectivity=1.0, window=100.0)
        assert value < float("inf")

    def test_monotone_in_selectivity(self):
        low = kleene_match_rate(1.0, 1.0, 0.1, 5.0)
        high = kleene_match_rate(1.0, 1.0, 0.3, 5.0)
        assert high > low


class TestTheorem5MatchSizes:
    def test_non_kleene_increments_by_one(self):
        sizes = average_match_sizes(
            stats3(rates=(1, 1, 1), sels=(1, 0.5, 0.5)), window=2.0
        )
        assert sizes == [1.0, 2.0]

    def test_kleene_adds_expected_tuple_length(self):
        sizes = average_match_sizes(
            stats3(rates=(1, 1, 1), sels=(1, 0.5, 0.5)),
            window=2.0,
            kleene_stages=frozenset({1}),
        )
        assert sizes[0] == 1.0
        # The entry after the Kleene stage is strictly larger than +1.
        plain = average_match_sizes(
            stats3(rates=(1, 1, 1), sels=(1, 0.5, 0.5)), window=2.0
        )
        assert sizes[1] > plain[1]


class TestTheorem1Allocation:
    def test_proportional_to_loads(self):
        allocation = proportional_allocation([1.0, 3.0], total_units=8)
        assert allocation == [2, 6]

    def test_sums_to_total(self):
        allocation = proportional_allocation([1.0, 2.0, 3.0, 5.0], 17)
        assert sum(allocation) == 17

    def test_minimum_one_unit_each(self):
        allocation = proportional_allocation([0.001, 100.0], 10)
        assert allocation[0] >= 1

    def test_insufficient_units_rejected(self):
        with pytest.raises(AllocationError):
            proportional_allocation([1.0, 1.0, 1.0], 2)

    def test_zero_load_spreads_evenly(self):
        assert proportional_allocation([0.0, 0.0], 4) == [2, 2]
        assert proportional_allocation([0.0, 0.0, 0.0], 4) == [2, 1, 1]

    def test_empty(self):
        assert proportional_allocation([], 4) == []


class TestLoadModel:
    def test_for_nfa_dimension_check(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        with pytest.raises(AllocationError):
            LoadModel.for_nfa(
                nfa, WorkloadStatistics(rates=(1.0,), selectivities=(1.0,))
            )

    def test_agent_loads_positive(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        model = LoadModel.for_nfa(nfa, stats3())
        loads = model.agent_loads(total_units=8)
        assert len(loads) == 2
        assert all(load.total > 0 for load in loads)
        assert all(load.comp >= 0 and load.sync >= 0 for load in loads)

    def test_measured_match_rates_override_recursion(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        measured = WorkloadStatistics(
            rates=(1.0, 1.0, 1.0),
            selectivities=(1.0, 0.1, 0.1),
            match_rates=(5.0, 7.0, 1.0),
        )
        model = LoadModel.for_nfa(nfa, measured)
        loads = model.agent_loads(8)
        assert loads[0].match_rate == 5.0
        assert loads[1].match_rate == 7.0

    def test_stage_work_override(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        measured = WorkloadStatistics(
            rates=(1.0, 1.0, 1.0),
            selectivities=(1.0, 0.1, 0.1),
            stage_work=(0.0, 10.0, 90.0),
        )
        model = LoadModel.for_nfa(nfa, measured)
        loads = model.agent_loads(10)
        assert loads[1].comp == pytest.approx(9 * loads[0].comp)

    def test_allocation_follows_load(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        measured = WorkloadStatistics(
            rates=(1.0, 1.0, 1.0),
            selectivities=(1.0, 0.1, 0.1),
            stage_work=(0.0, 10.0, 30.0),
        )
        model = LoadModel.for_nfa(nfa, measured)
        allocation = model.allocation(8)
        assert sum(allocation) == 8
        assert allocation[1] > allocation[0]

    def test_sync_includes_queue_cost(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        cheap = LoadModel.for_nfa(
            nfa, stats3(), CostParameters(queue_push=0.0)
        )
        dear = LoadModel.for_nfa(
            nfa, stats3(), CostParameters(queue_push=10.0)
        )
        assert (
            dear.agent_loads(4)[0].sync > cheap.agent_loads(4)[0].sync
        )

    def test_total_computations(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B", "C"], window=2.0))
        model = LoadModel.for_nfa(nfa, stats3())
        assert model.total_computations() == pytest.approx(
            sum(load.comp for load in model.agent_loads(1))
        )


class TestOutputRates:
    def test_last_output_is_full_match_rate(self):
        stats = stats3(rates=(1.0, 1.0, 1.0), sels=(1.0, 0.5, 0.25))
        outputs = output_rates(stats, window=2.0)
        arrival = match_arrival_rates(stats, window=2.0)
        # output of agent 0 equals arrival into agent 1
        assert outputs[0] == pytest.approx(arrival[1])


class TestCostParameters:
    def test_negative_rejected(self):
        with pytest.raises(AllocationError):
            CostParameters(comparison=-1.0)

    def test_defaults_ordered(self):
        costs = CostParameters()
        assert costs.comparison > costs.lock > costs.queue_push


class TestKleeneBindingMultiplicities:
    def test_all_ones_without_kleene_stages(self):
        assert kleene_binding_multiplicities(stats3(), window=2.0) == [
            1.0,
            1.0,
            1.0,
        ]

    def test_kleene_stage_exceeds_one(self):
        stats = stats3(rates=(1.0, 4.0, 1.0), sels=(1.0, 0.5, 0.5))
        mult = kleene_binding_multiplicities(stats, 2.0, frozenset({1}))
        assert mult[0] == 1.0
        assert mult[2] == 1.0
        assert mult[1] > 1.0

    def test_grows_with_window(self):
        stats = stats3(rates=(1.0, 4.0, 1.0), sels=(1.0, 0.5, 0.5))
        small = kleene_binding_multiplicities(stats, 1.0, frozenset({1}))[1]
        large = kleene_binding_multiplicities(stats, 4.0, frozenset({1}))[1]
        assert large > small

    def test_first_stage_out_of_chain_model(self):
        # Stage 0 cannot be a Kleene stage in the agent-chain model; the
        # helper ignores it rather than producing a bogus factor.
        mult = kleene_binding_multiplicities(stats3(), 2.0, frozenset({0}))
        assert mult == [1.0, 1.0, 1.0]

    def test_never_below_one(self):
        # Sparse closures (expected tuple length < 1 extension) clamp to
        # the primary-stage baseline instead of discounting the stage.
        stats = stats3(rates=(1.0, 0.05, 1.0), sels=(1.0, 0.05, 0.5))
        mult = kleene_binding_multiplicities(stats, 0.5, frozenset({1}))
        assert mult[1] == 1.0

    def test_scales_closed_form_comp(self):
        # Pin arrival rates via measured match_rates so the only delta
        # between the two models is the multiplicity factor itself.
        stats = WorkloadStatistics(
            rates=(1.0, 4.0, 1.0),
            selectivities=(1.0, 0.5, 0.5),
            match_rates=(2.0, 1.0, 0.5),
        )
        plain = LoadModel(window=2.0, stats=stats, costs=CostParameters())
        closed = LoadModel(
            window=2.0,
            stats=stats,
            costs=CostParameters(),
            kleene_stages=frozenset({1}),
        )
        mult = kleene_binding_multiplicities(stats, 2.0, frozenset({1}))
        assert closed.agent_loads(4)[0].comp == pytest.approx(
            plain.agent_loads(4)[0].comp * mult[1]
        )
        assert closed.agent_loads(4)[1].comp == pytest.approx(
            plain.agent_loads(4)[1].comp
        )

    def test_measured_stage_work_not_double_counted(self):
        # When stage_work was sampled, the growth is already in the
        # counters; the multiplicity factor must not be applied on top.
        stats = WorkloadStatistics(
            rates=(1.0, 4.0, 1.0),
            selectivities=(1.0, 0.5, 0.5),
            match_rates=(2.0, 1.0, 0.5),
            stage_work=(1.0, 3.0, 2.0),
        )
        plain = LoadModel(window=2.0, stats=stats, costs=CostParameters())
        closed = LoadModel(
            window=2.0,
            stats=stats,
            costs=CostParameters(),
            kleene_stages=frozenset({1}),
        )
        assert [load.comp for load in closed.agent_loads(4)] == [
            load.comp for load in plain.agent_loads(4)
        ]


class TestGuardRates:
    def test_validation(self):
        with pytest.raises(AllocationError):
            WorkloadStatistics(
                rates=(1.0, 1.0),
                selectivities=(1.0, 0.5),
                guard_rates=(1.0,),
            )
        with pytest.raises(AllocationError):
            WorkloadStatistics(
                rates=(1.0, 1.0),
                selectivities=(1.0, 0.5),
                guard_rates=(0.0, -1.0),
            )

    def test_guard_rate_of_defaults_to_zero(self):
        stats = stats3()
        assert all(stats.guard_rate_of(i) == 0.0 for i in range(3))

    def test_guard_traffic_inflates_comp(self):
        base = WorkloadStatistics(
            rates=(1.0, 1.0, 1.0),
            selectivities=(1.0, 0.1, 0.1),
            match_rates=(2.0, 1.0, 0.5),
        )
        guarded = WorkloadStatistics(
            rates=(1.0, 1.0, 1.0),
            selectivities=(1.0, 0.1, 0.1),
            match_rates=(2.0, 1.0, 0.5),
            guard_rates=(0.0, 2.0, 0.0),
        )
        loads_base = LoadModel(
            window=2.0, stats=base, costs=CostParameters()
        ).agent_loads(4)
        loads_guarded = LoadModel(
            window=2.0, stats=guarded, costs=CostParameters()
        ).agent_loads(4)
        # Guard events scan agent 0's buffer (stage 1) without binding.
        assert loads_guarded[0].comp > loads_base[0].comp
        assert loads_guarded[1].comp == pytest.approx(loads_base[1].comp)

    def test_estimate_statistics_fills_guard_rates(self):
        events = make_stream(num_events=600, seed=11)
        negated = Pattern.sequence(
            ["A", "X", "C"], window=4.0, names=["p1", "p2", "p3"],
            negated=[1],
        )
        stats = estimate_statistics(negated, events)
        assert len(stats.guard_rates) == stats.num_stages
        assert any(rate > 0.0 for rate in stats.guard_rates)
        plain = estimate_statistics(
            Pattern.sequence(["A", "C"], window=4.0), events
        )
        assert plain.guard_rates == ()
