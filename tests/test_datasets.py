"""Tests for the synthetic dataset generators and CSV persistence."""

import random

import pytest

from repro.core import pearson_correlation
from repro.core.events import validate_stream_order
from repro.datasets import (
    HISTORY_LENGTH,
    SensorConfig,
    StockConfig,
    ZONES,
    calibrate_correlation_threshold,
    calibrate_distance_margin,
    generate_sensor_stream,
    generate_stock_stream,
    load_stream,
    save_stream,
)
from repro.datasets.base import ArrivalProcess, interleave_arrivals


class TestInterleaveArrivals:
    def test_ordered_and_exact_count(self):
        rng = random.Random(0)
        processes = [ArrivalProcess("A", 1.0), ArrivalProcess("B", 2.0)]
        pairs = list(interleave_arrivals(processes, 200, rng))
        assert len(pairs) == 200
        timestamps = [t for _name, t in pairs]
        assert timestamps == sorted(timestamps)

    def test_rates_respected(self):
        rng = random.Random(1)
        processes = [ArrivalProcess("A", 1.0), ArrivalProcess("B", 4.0)]
        pairs = list(interleave_arrivals(processes, 2000, rng))
        count_b = sum(1 for name, _t in pairs if name == "B")
        assert count_b / 2000 == pytest.approx(0.8, abs=0.05)

    def test_zero_rate_excluded(self):
        rng = random.Random(2)
        processes = [ArrivalProcess("A", 1.0), ArrivalProcess("B", 0.0)]
        pairs = list(interleave_arrivals(processes, 100, rng))
        assert all(name == "A" for name, _t in pairs)


class TestStockStream:
    @pytest.fixture(scope="class")
    def events(self):
        return generate_stock_stream(
            StockConfig(num_events=2000, symbols=("S0", "S1", "S2"), seed=7)
        )

    def test_count_and_order(self, events):
        assert len(events) == 2000
        assert list(validate_stream_order(events)) == events

    def test_schema(self, events):
        event = events[100]
        assert set(event.attributes) == {"symbol", "price", "history"}
        assert len(event["history"]) == HISTORY_LENGTH
        assert event["price"] > 0
        assert event.payload_size > 100  # history-bearing payload

    def test_history_tracks_prices(self, events):
        by_symbol = [e for e in events if e.type.name == "S0"]
        later = by_symbol[50]
        assert later["history"][-1] == pytest.approx(later["price"])

    def test_deterministic_given_seed(self):
        config = StockConfig(num_events=100, symbols=("S0",), seed=3)
        first = generate_stock_stream(config)
        second = generate_stock_stream(config)
        assert [e.timestamp for e in first] == [e.timestamp for e in second]
        assert [e["price"] for e in first] == [e["price"] for e in second]

    def test_coupling_raises_correlations(self):
        loose = generate_stock_stream(
            StockConfig(num_events=3000, symbols=("S0", "S1"), coupling=0.02,
                        seed=5)
        )
        tight = generate_stock_stream(
            StockConfig(num_events=3000, symbols=("S0", "S1"), coupling=0.9,
                        seed=5)
        )

        def mean_abs_corr(events):
            s0 = [e for e in events if e.type.name == "S0"][100:200]
            s1 = [e for e in events if e.type.name == "S1"][100:200]
            values = [
                pearson_correlation(a["history"], b["history"])
                for a, b in zip(s0, s1)
            ]
            return sum(values) / len(values)

        assert mean_abs_corr(tight) > mean_abs_corr(loose)

    def test_calibration_hits_target(self, events):
        threshold = calibrate_correlation_threshold(
            events, ("S0", "S1"), window=20.0, target_selectivity=0.2
        )
        passing = total = 0
        recent = []
        for event in events:
            if event.type.name == "S0":
                recent.append(event)
            elif event.type.name == "S1":
                recent = [
                    e for e in recent if e.timestamp >= event.timestamp - 20.0
                ]
                for candidate in recent:
                    total += 1
                    if (
                        pearson_correlation(
                            candidate["history"], event["history"]
                        )
                        > threshold
                    ):
                        passing += 1
        assert passing / total == pytest.approx(0.2, abs=0.07)

    def test_calibration_rejects_bad_target(self, events):
        with pytest.raises(ValueError):
            calibrate_correlation_threshold(events, ("S0", "S1"), 20.0, 1.5)

    def test_warmup_histories_are_full_depth_and_nondegenerate(self, events):
        # The old generator padded short histories by repeating the first
        # price, which nearly zeroed the centered cross-terms and biased
        # every warm-up Pearson correlation toward 0.  Histories are now
        # seeded from a per-symbol pre-stream walk: full depth and varying
        # from the very first event.
        for event in events[:10]:
            history = event["history"]
            assert len(history) == HISTORY_LENGTH
            assert len(set(history)) > HISTORY_LENGTH // 2

    def test_warmup_is_deterministic_and_per_symbol(self):
        config = StockConfig(num_events=50, symbols=("S0", "S1"), seed=3)
        first = generate_stock_stream(config)
        second = generate_stock_stream(config)
        assert [e["history"] for e in first] == [e["history"] for e in second]
        first_s0 = next(e for e in first if e.type.name == "S0")
        first_s1 = next(e for e in first if e.type.name == "S1")
        # Distinct per-symbol warm-up RNG streams: the pre-stream walks of
        # two symbols must not coincide.
        assert first_s0["history"][:-1] != first_s1["history"][:-1]

    def test_calibrated_threshold_pinned(self):
        # Pins the calibrated operating point under the fixed warm-up walk;
        # a change to the generator's draw sequence moves this value.
        stream = generate_stock_stream(StockConfig(num_events=500, seed=11))
        threshold = calibrate_correlation_threshold(
            stream, ("S0", "S1"), window=30.0, target_selectivity=0.3
        )
        assert threshold == pytest.approx(0.5710698479351777, rel=1e-9)


class TestSensorStream:
    @pytest.fixture(scope="class")
    def events(self):
        return generate_sensor_stream(SensorConfig(num_events=2000, seed=9))

    def test_count_and_order(self, events):
        assert len(events) == 2000
        assert list(validate_stream_order(events)) == events

    def test_schema_has_33_attributes(self, events):
        event = events[42]
        assert len(event.attributes) == 33 + 1  # + activity label
        for zone in ZONES:
            assert f"distance_{zone}" in event.attributes
        assert "accel_z" in event.attributes

    def test_distances_bounded_by_home(self, events):
        config = SensorConfig()
        bound = 3.0 * config.home_size
        for event in events[:200]:
            for zone in ZONES:
                assert 0 <= event[f"distance_{zone}"] <= bound

    def test_zone_bias_separates_activities(self):
        biased = generate_sensor_stream(
            SensorConfig(num_events=3000, zone_bias=0.9, seed=11)
        )
        cooking = [e for e in biased if e.type.name == "cooking"]
        sleeping = [e for e in biased if e.type.name == "sleeping"]
        cook_dist = sum(e["distance_kitchen"] for e in cooking) / len(cooking)
        sleep_dist = sum(e["distance_kitchen"] for e in sleeping) / len(sleeping)
        assert cook_dist < sleep_dist

    def test_margin_calibration(self, events):
        margin = calibrate_distance_margin(
            events, "cooking", "sleeping", "kitchen",
            window=20.0, target_selectivity=0.3,
        )
        assert isinstance(margin, float)


class TestLoader:
    def test_round_trip(self, tmp_path):
        events = generate_stock_stream(
            StockConfig(num_events=50, symbols=("S0", "S1"), seed=13)
        )
        path = tmp_path / "stream.csv"
        save_stream(events, path)
        loaded = load_stream(path)
        assert len(loaded) == 50
        assert [e.type.name for e in loaded] == [e.type.name for e in events]
        assert loaded[0].timestamp == pytest.approx(events[0].timestamp)
        assert loaded[0]["history"] == pytest.approx(events[0]["history"])
        assert loaded[0].payload_size == events[0].payload_size

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_stream([], path)
        assert load_stream(path) == []

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not,a,stream\n1,2,3\n")
        from repro.core import StreamError

        with pytest.raises(StreamError):
            load_stream(path)

    def test_out_of_order_rejected(self, tmp_path):
        path = tmp_path / "ooo.csv"
        path.write_text(
            "type,timestamp,payload_size,x\nA,2.0,64,1\nA,1.0,64,2\n"
        )
        from repro.core import StreamError

        with pytest.raises(StreamError):
            load_stream(path)


class TestConcatStreams:
    def test_segments_restamped_in_order(self):
        from repro.core.streams import concat_streams

        first = generate_stock_stream(StockConfig(num_events=50, seed=1))
        second = generate_stock_stream(StockConfig(num_events=50, seed=2))
        stitched = concat_streams(first, second, gap=1.5)
        assert len(stitched) == 100
        validate_stream_order(stitched)
        # The second segment starts exactly `gap` after the first ends,
        # preserving its segment-local spacing as offsets.
        boundary = stitched[50].timestamp
        assert boundary == pytest.approx(
            first[-1].timestamp + 1.5 + second[0].timestamp
        )

    def test_event_ids_stay_globally_fresh(self):
        from repro.core.streams import concat_streams

        segment = generate_stock_stream(StockConfig(num_events=30, seed=3))
        stitched = concat_streams(segment, segment)
        ids = [event.event_id for event in stitched]
        assert len(set(ids)) == len(ids)

    def test_empty_segments_skipped(self):
        from repro.core.streams import concat_streams

        segment = generate_stock_stream(StockConfig(num_events=10, seed=4))
        assert len(concat_streams([], segment, [])) == 10
        assert concat_streams([], []) == []


class TestBurstyStream:
    def _config(self, **overrides):
        from repro.datasets import BurstyConfig

        defaults = dict(
            symbols=tuple(f"S{i}" for i in range(4)),
            base_rate=10.0,
            num_phases=4,
            events_per_phase=200,
            seed=9,
        )
        defaults.update(overrides)
        return BurstyConfig(**defaults)

    def test_stream_is_ordered_and_sized(self):
        from repro.datasets import generate_bursty_stream

        events = generate_bursty_stream(self._config())
        assert len(events) == 4 * 200
        validate_stream_order(events)
        # Full stock schema survives the phase stitching.
        assert all("symbol" in event.attributes for event in events)

    def test_determinism(self):
        from repro.datasets import generate_bursty_stream

        first = generate_bursty_stream(self._config())
        second = generate_bursty_stream(self._config())
        assert [(e.type.name, e.timestamp) for e in first] == [
            (e.type.name, e.timestamp) for e in second
        ]

    def test_burst_phases_skew_type_mix(self):
        from repro.datasets import generate_bursty_stream

        config = self._config()
        events = generate_bursty_stream(config)
        per_phase = 200

        def counts(phase):
            chunk = events[phase * per_phase:(phase + 1) * per_phase]
            out = {}
            for event in chunk:
                out[event.type.name] = out.get(event.type.name, 0) + 1
            return out

        calm = counts(0)
        burst = counts(1)
        # Calm phase: roughly uniform; burst phase: the hot subset
        # dominates (burst_factor 4 vs cold_factor 0.25 is a 16x ratio).
        assert max(calm.values()) < 2 * min(calm.values())
        assert max(burst.values()) > 3 * min(burst.values())

    def test_hot_subset_rotates_between_bursts(self):
        from repro.datasets.bursty import _phase_rates

        config = self._config(num_phases=6)
        first_burst = _phase_rates(config, 1)
        second_burst = _phase_rates(config, 3)
        assert first_burst != second_burst
        hot_first = {i for i, r in enumerate(first_burst) if r > config.base_rate}
        hot_second = {i for i, r in enumerate(second_burst) if r > config.base_rate}
        assert hot_first.isdisjoint(hot_second)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            self._config(num_phases=0)
        with pytest.raises(ValueError):
            self._config(events_per_phase=0)
        with pytest.raises(ValueError):
            self._config(hot_symbols=99)
