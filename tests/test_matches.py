"""Tests for partial and full matches."""

from repro.core import Event, EventType, Match, PartialMatch, match_key

A = EventType("A")


def ev(t):
    return Event(A, t)


class TestPartialMatch:
    def test_empty(self):
        empty = PartialMatch.empty()
        assert empty.binding == {}
        assert empty.event_count() == 0
        assert list(empty.events()) == []

    def test_of_single_event(self):
        event = ev(3.0)
        pm = PartialMatch.of("p1", event)
        assert pm.earliest == 3.0
        assert pm.latest == 3.0
        assert pm["p1"] is event
        assert "p1" in pm

    def test_extended_is_immutable(self):
        base = PartialMatch.of("p1", ev(1.0))
        extended = base.extended("p2", ev(2.0))
        assert "p2" not in base
        assert extended.earliest == 1.0
        assert extended.latest == 2.0
        assert base.event_count() == 1
        assert extended.event_count() == 2

    def test_extended_kleene_appends(self):
        base = PartialMatch(binding={"k": (ev(1.0),)}, earliest=1.0, latest=1.0)
        grown = base.extended_kleene("k", ev(2.0))
        assert len(grown["k"]) == 2
        assert len(base["k"]) == 1
        assert grown.event_count() == 2

    def test_timestamps_track_extremes(self):
        pm = PartialMatch.of("p1", ev(5.0)).extended("p2", ev(2.0))
        assert pm.earliest == 2.0
        assert pm.latest == 5.0
        assert pm.timestamp == 2.0  # paper: pm timestamp = earliest

    def test_within_window(self):
        pm = PartialMatch.of("p1", ev(1.0)).extended("p2", ev(4.0))
        assert pm.within_window(3.0)
        assert not pm.within_window(2.9)
        assert pm.span() == 3.0

    def test_fits_with(self):
        pm = PartialMatch.of("p1", ev(1.0))
        assert pm.fits_with(ev(4.0), window=3.0)
        assert not pm.fits_with(ev(4.5), window=3.0)

    def test_repr_includes_ids(self):
        event = ev(1.0)
        pm = PartialMatch.of("p1", event)
        assert str(event.event_id) in repr(pm)


class TestMatchKey:
    def test_order_insensitive_in_positions(self):
        e1, e2 = ev(1.0), ev(2.0)
        assert match_key({"a": e1, "b": e2}) == match_key({"b": e2, "a": e1})

    def test_distinguishes_positions(self):
        e1, e2 = ev(1.0), ev(2.0)
        assert match_key({"a": e1, "b": e2}) != match_key({"a": e2, "b": e1})

    def test_kleene_tuples_ordered(self):
        e1, e2 = ev(1.0), ev(2.0)
        assert match_key({"k": (e1, e2)}) != match_key({"k": (e2, e1)})


class TestMatch:
    def test_from_partial(self):
        pm = PartialMatch.of("p1", ev(1.0)).extended("p2", ev(2.0))
        match = Match.from_partial(pm, detected_at=5.0)
        assert match.earliest == 1.0
        assert match.latest == 2.0
        assert match.latency == 3.0

    def test_equality_and_hash_by_key(self):
        e1, e2 = ev(1.0), ev(2.0)
        pm = PartialMatch.of("p1", e1).extended("p2", e2)
        first = Match.from_partial(pm, detected_at=3.0)
        second = Match.from_partial(pm, detected_at=99.0)
        assert first == second  # detected_at excluded from identity
        assert len({first, second}) == 1

    def test_getitem(self):
        event = ev(1.0)
        match = Match.from_partial(PartialMatch.of("p1", event))
        assert match["p1"] is event

    def test_events_flattens_kleene(self):
        e1, e2, e3 = ev(1.0), ev(2.0), ev(3.0)
        pm = PartialMatch(
            binding={"a": e1, "k": (e2, e3)}, earliest=1.0, latest=3.0
        )
        match = Match.from_partial(pm)
        assert sorted(e.timestamp for e in match.events()) == [1.0, 2.0, 3.0]
