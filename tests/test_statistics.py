"""Tests for workload-statistics estimation."""

import pytest

from tests.conftest import make_stream
from repro.core import AttributeCondition, Pattern
from repro.costmodel import estimate_statistics, statistics_from_sample


class TestEstimateStatistics:
    def test_rates_reflect_frequencies(self):
        events = make_stream(num_events=2000, seed=1)
        pattern = Pattern.sequence(["A", "B", "C"], window=5.0)
        stats = estimate_statistics(pattern, events)
        # Five types uniformly: each ~0.2 of total rate (~1 event/time unit
        # at gap~0.5 mean => ~2 events per time unit overall).
        total_rate = sum(stats.rates)
        for rate in stats.rates:
            assert rate == pytest.approx(total_rate / 3, rel=0.35)

    def test_selectivity_of_unconditioned_stage_is_one(self):
        events = make_stream(num_events=1000, seed=2)
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        stats = estimate_statistics(pattern, events)
        assert stats.selectivities[1] == pytest.approx(1.0)

    def test_selectivity_of_filter(self):
        events = make_stream(num_events=3000, seed=3, attr_range=10)
        pattern = Pattern.sequence(
            ["A", "B"],
            window=5.0,
            condition=AttributeCondition("p1", "x", "==", "p2", "x"),
        )
        stats = estimate_statistics(pattern, events)
        # x uniform over 10 values -> equality selectivity ~ 0.1.
        assert stats.selectivities[1] == pytest.approx(0.1, abs=0.05)

    def test_match_rates_measured(self):
        events = make_stream(num_events=1500, seed=4)
        pattern = Pattern.sequence(["A", "B", "C"], window=5.0)
        stats = estimate_statistics(pattern, events)
        assert len(stats.match_rates) == 3
        # Seeds arrive at the A rate.
        assert stats.match_rates[0] == pytest.approx(stats.rates[0], rel=0.05)

    def test_stage_work_measured_and_positive(self):
        events = make_stream(num_events=1500, seed=5)
        pattern = Pattern.sequence(["A", "B", "C"], window=5.0)
        stats = estimate_statistics(pattern, events)
        assert len(stats.stage_work) == 3
        assert stats.stage_work[1] > 0

    def test_event_sizes_from_payloads(self):
        events = make_stream(num_events=500, seed=6)
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        stats = estimate_statistics(pattern, events)
        assert stats.event_sizes == (64.0, 64.0)

    def test_explicit_event_sizes_win(self):
        events = make_stream(num_events=200, seed=7)
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        stats = estimate_statistics(pattern, events, event_sizes=[10, 20])
        assert stats.event_sizes == (10, 20)

    def test_empty_sample_degrades_gracefully(self):
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        stats = estimate_statistics(pattern, [])
        assert stats.rates == (0.0, 0.0)
        assert stats.match_rates == ()


class TestStatisticsFromSample:
    def test_prefix_returned_for_replay(self):
        events = make_stream(num_events=100, seed=8)
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        stats, prefix = statistics_from_sample(
            pattern, iter(events), sample_size=40
        )
        assert prefix == events[:40]
        assert stats.num_stages == 2

    def test_short_stream_fully_consumed(self):
        events = make_stream(num_events=10, seed=9)
        pattern = Pattern.sequence(["A", "B"], window=5.0)
        _stats, prefix = statistics_from_sample(
            pattern, iter(events), sample_size=100
        )
        assert len(prefix) == 10
