"""Unit tests for the agent core (buffered join, purging, Kleene, guards)."""

import pytest

from repro.core import Event, EventType, Pattern, PartialMatch, compile_pattern
from repro.hypersonic import ItemKind, WorkItem
from repro.hypersonic.agent import AgentCore

A, B, C, X = (EventType(n) for n in "ABCX")


def ev(type_, t, **attrs):
    return Event(type_, t, attrs)


def make_agent(pattern, stage_index=1, watermark=lambda: float("-inf"),
               is_last=None):
    nfa = compile_pattern(pattern)
    if is_last is None:
        is_last = stage_index == nfa.num_stages - 1
    return AgentCore(
        agent_index=stage_index - 1,
        stages=nfa.stages,
        stage_index=stage_index,
        window=nfa.window,
        watermark=watermark,
        is_last=is_last,
    )


def seed(event):
    return WorkItem(ItemKind.MATCH, PartialMatch.of("p1", event))


class TestBufferedJoin:
    def test_match_then_event(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=10.0))
        r1 = agent.process(seed(ev(A, 1)), unit_id=0)
        assert r1.emitted_down == []
        r2 = agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        assert len(r2.emitted_down) == 1

    def test_event_then_match(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=10.0))
        agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        receipt = agent.process(seed(ev(A, 1)), unit_id=0)
        assert len(receipt.emitted_down) == 1

    def test_exactly_once_pairs(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=10.0))
        emissions = 0
        for item in [
            seed(ev(A, 1)), WorkItem.event(ev(B, 2)),
            seed(ev(A, 1.5)), WorkItem.event(ev(B, 3)),
        ]:
            emissions += len(agent.process(item, unit_id=0).emitted_down)
        # pairs: (A1,B2), (A1,B3), (A1.5,B2)? no - order: A1.5 < B2 OK -> yes
        # (A1.5,B3). All four.
        assert emissions == 4

    def test_order_constraint(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=10.0))
        agent.process(WorkItem.event(ev(B, 1)), unit_id=0)
        receipt = agent.process(seed(ev(A, 2)), unit_id=0)
        assert receipt.emitted_down == []

    def test_window_constraint(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=2.0))
        agent.process(seed(ev(A, 1)), unit_id=0)
        receipt = agent.process(WorkItem.event(ev(B, 3.5)), unit_id=0)
        assert receipt.emitted_down == []

    def test_fragments_per_unit(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=10.0))
        agent.process(WorkItem.event(ev(B, 1)), unit_id=0)
        agent.process(WorkItem.event(ev(B, 2)), unit_id=1)
        assert agent.event_buffer.fragment_count() == 2
        assert agent.working_set_items(0) == 1

    def test_receipt_accounting(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=10.0))
        agent.process(seed(ev(A, 1)), unit_id=0)
        receipt = agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        assert receipt.fragments_locked >= 1
        assert receipt.comparisons >= 1
        assert receipt.scanned >= 1


class TestPurging:
    def test_expired_matches_purged_on_event(self):
        agent = make_agent(
            Pattern.sequence(["A", "B"], window=2.0),
            watermark=lambda: 50.0,
        )
        agent.process(seed(ev(A, 1)), unit_id=0)
        agent.process(WorkItem.event(ev(B, 50)), unit_id=0)
        assert agent.match_buffer.total_items() <= 1  # old seed purged

    def test_expired_incoming_match_dropped(self):
        agent = make_agent(
            Pattern.sequence(["A", "B"], window=2.0),
            watermark=lambda: 99.0,
        )
        agent.process(WorkItem.event(ev(B, 99)), unit_id=0)
        agent.process(seed(ev(A, 1)), unit_id=0)
        # The seed is expired relative to event progress: not stored.
        assert agent.match_buffer.total_items() == 0

    def test_event_purge_respects_queued_matches(self):
        agent = make_agent(
            Pattern.sequence(["A", "B"], window=2.0),
            watermark=lambda: 99.0,
        )
        agent.process(WorkItem.event(ev(B, 1.5)), unit_id=0)
        # Queue an old match without processing it: its presence must
        # keep the B event alive despite much newer matches arriving.
        agent.ms.push(seed(ev(A, 1)))
        agent.process(seed(ev(A, 99)), unit_id=0)
        assert agent.event_buffer.total_items() >= 1
        old = agent.ms.pop()
        receipt = agent.process(old, unit_id=0)
        assert len(receipt.emitted_down) == 1


class TestKleeneInline:
    def test_subsequences_from_buffered_events(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=10.0, kleene=[1])
        agent = make_agent(pattern, stage_index=1, is_last=False)
        agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        agent.process(WorkItem.event(ev(B, 3)), unit_id=0)
        receipt = agent.process(seed(ev(A, 1)), unit_id=0)
        # Subsequences of {B2, B3}: (B2), (B3), (B2,B3).
        assert len(receipt.emitted_down) == 3
        assert receipt.emitted_self == []  # inline growth, no loop-backs

    def test_future_events_extend_stored_tuples(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=10.0, kleene=[1])
        agent = make_agent(pattern, stage_index=1, is_last=False)
        agent.process(seed(ev(A, 1)), unit_id=0)
        first = agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        assert len(first.emitted_down) == 1  # (B2)
        second = agent.process(WorkItem.event(ev(B, 3)), unit_id=0)
        # (B3) from the seed plus (B2,B3) from the stored tuple.
        assert len(second.emitted_down) == 2


class TestInternalGuard:
    def make(self, watermark):
        pattern = Pattern.sequence(
            ["A", "X", "B"], window=10.0, negated=[1]
        )
        return make_agent(pattern, stage_index=1, watermark=watermark)

    def test_strike_by_buffered_guard_event(self):
        agent = self.make(lambda: 3.5)
        agent.process(WorkItem.guard(ev(X, 2)), unit_id=0)
        agent.process(seed(ev(A, 1)), unit_id=0)
        receipt = agent.process(WorkItem.event(ev(B, 3)), unit_id=0)
        assert receipt.emitted_down == []

    def test_clean_when_guard_outside_span(self):
        agent = self.make(lambda: 5.5)
        agent.process(WorkItem.guard(ev(X, 5)), unit_id=0)
        agent.process(seed(ev(A, 1)), unit_id=0)
        receipt = agent.process(WorkItem.event(ev(B, 3)), unit_id=0)
        assert len(receipt.emitted_down) == 1

    def test_quarantine_until_watermark(self):
        watermark = {"value": 2.5}
        agent = self.make(lambda: watermark["value"])
        agent.process(seed(ev(A, 1)), unit_id=0)
        receipt = agent.process(WorkItem.event(ev(B, 3)), unit_id=0)
        # Watermark has not passed the binding event: candidate held.
        assert receipt.emitted_down == []
        watermark["value"] = 10.0
        released = agent.maintenance()
        assert len(released.emitted_down) == 1

    def test_quarantined_candidate_struck_by_late_guard(self):
        watermark = {"value": 2.5}
        agent = self.make(lambda: watermark["value"])
        agent.process(seed(ev(A, 1)), unit_id=0)
        agent.process(WorkItem.event(ev(B, 3)), unit_id=0)
        watermark["value"] = 10.0
        struck = agent.process(WorkItem.guard(ev(X, 2)), unit_id=0)
        assert struck.emitted_down == []
        assert agent.maintenance().emitted_down == []

    def test_guard_queue_head_blocks_release(self):
        agent = self.make(lambda: 100.0)
        agent.process(seed(ev(A, 1)), unit_id=0)
        # An unprocessed guard event older than the binding blocks release.
        agent.guard_q.push(WorkItem.guard(ev(X, 2)))
        receipt = agent.process(WorkItem.event(ev(B, 3)), unit_id=0)
        assert receipt.emitted_down == []
        # Processing the guard event strikes the candidate.
        item = agent.pop("event")
        assert item.kind is ItemKind.GUARD
        struck = agent.process(item, unit_id=0)
        assert struck.emitted_down == []


class TestTrailingGuard:
    def make(self, watermark):
        pattern = Pattern.sequence(["A", "B", "X"], window=5.0, negated=[2])
        return make_agent(pattern, stage_index=1, watermark=watermark)

    def test_held_until_window_end(self):
        watermark = {"value": 3.0}
        agent = self.make(lambda: watermark["value"])
        agent.process(seed(ev(A, 1)), unit_id=0)
        receipt = agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        assert receipt.emitted_down == []
        watermark["value"] = 6.5  # past earliest + W = 6
        assert len(agent.maintenance().emitted_down) == 1

    def test_flush_releases_survivors(self):
        agent = self.make(lambda: 3.0)
        agent.process(seed(ev(A, 1)), unit_id=0)
        agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        flushed = agent.flush()
        assert len(flushed.emitted_down) == 1

    def test_strike_kills_pending(self):
        watermark = {"value": 3.0}
        agent = self.make(lambda: watermark["value"])
        agent.process(seed(ev(A, 1)), unit_id=0)
        agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        agent.process(WorkItem.guard(ev(X, 4)), unit_id=0)
        watermark["value"] = 10.0
        assert agent.maintenance().emitted_down == []
        assert agent.flush().emitted_down == []


class TestWorkIntake:
    def test_pop_prefers_guard_queue(self):
        pattern = Pattern.sequence(["A", "X", "B"], window=5.0, negated=[1])
        agent = make_agent(pattern)
        agent.es.push(WorkItem.event(ev(B, 2)))
        agent.guard_q.push(WorkItem.guard(ev(X, 1)))
        assert agent.pop("event").kind is ItemKind.GUARD
        assert agent.pop("event").kind is ItemKind.EVENT

    def test_has_work_flags(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=5.0))
        assert not agent.has_any_work()
        agent.es.push(WorkItem.event(ev(B, 1)))
        assert agent.has_event_work()
        assert not agent.has_match_work()
        agent.ms.push(seed(ev(A, 0.5)))
        assert agent.has_match_work()

    def test_invalid_stage_index(self):
        nfa = compile_pattern(Pattern.sequence(["A", "B"], window=5.0))
        with pytest.raises(ValueError):
            AgentCore(0, nfa.stages, 0, 5.0, lambda: 0.0, True)


class TestSnapshot:
    def test_snapshot_counts(self):
        agent = make_agent(Pattern.sequence(["A", "B"], window=10.0))
        agent.process(seed(ev(A, 1)), unit_id=0)
        agent.process(WorkItem.event(ev(B, 2)), unit_id=0)
        snapshot = agent.snapshot()
        assert snapshot.eb_items == 1
        assert snapshot.mb_items == 1
        assert snapshot.mb_pointers == 1
        assert snapshot.agb_bytes == 2 * 64
