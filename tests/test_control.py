"""Control-plane tests: drift estimation, shedding policy, determinism.

Three layers, matching the import discipline of :mod:`repro.control`:

* :class:`~repro.obs.drift.DriftEstimator` in isolation — the live
  counterpart of the post-hoc calibration verdict;
* :class:`~repro.control.shedding.LoadShedder` in isolation — the
  pattern-aware admission controller, including its invariants (guard
  types are never shed, the hard ceiling overrides hotness);
* :class:`~repro.control.plane.ControlPlane` end to end through the
  simulator — byte-identical decision sequences across repeated runs,
  and the ``adapt="off"`` path bit-identical to the frozen sim goldens.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.control import SHED_POLICIES, ControlPlane, LoadShedder, ReplanDecision
from repro.control.decisions import DECISION_KINDS
from repro.core import Pattern
from repro.core.events import Event, EventType
from repro.obs.drift import DriftEstimator
from repro.core.errors import SimulationError
from repro.simulator import simulate

from tests.conftest import make_stream
from tests.make_sim_goldens import (
    GOLDEN_PATH,
    NUM_CORES,
    golden_pattern,
    golden_workload,
    result_payload,
)


def _event(name: str, ts: float = 0.0) -> Event:
    return Event(type=EventType(name), timestamp=ts)


class TestDriftEstimator:
    def test_fresh_estimator_reports_no_drift(self):
        est = DriftEstimator()
        assert est.moves() == 0
        assert not est.drifted()
        assert est.optimal_allocation() == []

    def test_note_plan_resets_busy_accumulators(self):
        est = DriftEstimator()
        est.note_plan([2, 2], [1.0, 1.0])
        est.note_busy(0, 5.0)
        est.note_busy(1, 1.0)
        assert est.items == 2
        est.note_plan([3, 1], [3.0, 1.0])
        assert est.items == 0
        assert est.busy == [0.0, 0.0]
        assert est.per_agent == [3, 1]

    def test_out_of_range_busy_is_ignored(self):
        est = DriftEstimator()
        est.note_plan([2, 2], [1.0, 1.0])
        est.note_busy(7, 5.0)
        assert est.items == 0

    def test_balanced_load_is_calibrated(self):
        est = DriftEstimator()
        est.note_plan([2, 2], [1.0, 1.0])
        for _ in range(10):
            est.note_busy(0, 1.0)
            est.note_busy(1, 1.0)
        assert est.optimal_allocation() == [2, 2]
        assert est.moves() == 0
        assert not est.drifted()

    def test_skewed_load_drifts(self):
        est = DriftEstimator()
        est.note_plan([4, 4], [1.0, 1.0])
        for _ in range(10):
            est.note_busy(0, 9.0)
            est.note_busy(1, 1.0)
        optimal = est.optimal_allocation()
        assert optimal[0] > optimal[1]
        assert est.moves() > 0
        assert est.drifted()

    def test_fusion_plan_without_loads_uses_counts(self):
        est = DriftEstimator()
        est.note_plan([3, 1], [])
        assert est.predicted_shares() == pytest.approx([0.75, 0.25])

    def test_constant_busy_shares_never_drift(self):
        """Observed shares that exactly track the prediction stay
        calibrated no matter how many observations accumulate."""
        est = DriftEstimator()
        est.note_plan([6, 2], [3.0, 1.0])
        for _ in range(500):
            est.note_busy(0, 3.0)
            est.note_busy(1, 1.0)
        assert est.items == 1000
        assert est.moves() == 0
        assert not est.drifted()
        assert est.optimal_allocation() == [6, 2]

    def test_single_agent_plan_never_moves(self):
        est = DriftEstimator()
        est.note_plan([4], [1.0])
        for _ in range(100):
            est.note_busy(0, 1.0)
        assert est.moves() == 0
        assert not est.drifted()


class _StubAgent:
    """Minimal consumer shape for the shedder's hot/cold probe."""

    class _Buffer:
        def __init__(self, items: int) -> None:
            self._items = items

        def total_items(self) -> int:
            return self._items

    def __init__(self, buffered: int = 0, queued: int = 0) -> None:
        self.match_buffer = self._Buffer(buffered)
        self.ms = [object()] * queued


class TestLoadShedder:
    def test_invalid_policy_and_bound_rejected(self):
        with pytest.raises(ValueError):
            LoadShedder(bound=4, policy="random")
        with pytest.raises(ValueError):
            LoadShedder(bound=-1)
        assert set(SHED_POLICIES) == {"tail", "pattern"}

    def test_disabled_shedder_admits_everything(self):
        shedder = LoadShedder(bound=0, policy="tail")
        shedder.note_backlog(10_000)
        assert not shedder.overloaded
        assert not shedder.should_shed(_event("A"))
        assert shedder.shed_total == 0

    def test_under_bound_admits_everything(self):
        shedder = LoadShedder(bound=8, policy="tail")
        shedder.note_backlog(8)
        assert not shedder.should_shed(_event("A"))

    def test_tail_policy_sheds_blindly_when_overloaded(self):
        shedder = LoadShedder(bound=4, policy="tail")
        shedder.note_backlog(5)
        assert shedder.should_shed(_event("A"))
        assert shedder.should_shed(_event("B"))
        assert shedder.counts()["total"] == 2

    def test_guard_types_never_shed(self):
        for policy in SHED_POLICIES:
            shedder = LoadShedder(
                bound=1, policy=policy, guard_types=frozenset({"N"})
            )
            shedder.note_backlog(1_000_000)  # far past the hard ceiling
            assert shedder.critical
            assert not shedder.should_shed(_event("N"))
            assert shedder.shed_total == 0

    def test_pattern_policy_sheds_seeds_first(self):
        shedder = LoadShedder(
            bound=4, policy="pattern", seed_types=frozenset({"A"}),
            consumers={"B": _StubAgent(buffered=3)},
        )
        shedder.note_backlog(5)
        assert shedder.should_shed(_event("A"))  # seed: opens new work
        assert not shedder.should_shed(_event("B"))  # hot consumer

    def test_pattern_policy_sheds_cold_consumers(self):
        shedder = LoadShedder(
            bound=4, policy="pattern",
            consumers={"B": _StubAgent(buffered=0, queued=0)},
        )
        shedder.note_backlog(5)
        assert shedder.should_shed(_event("B"))

    def test_queued_ms_work_counts_as_hot(self):
        shedder = LoadShedder(
            bound=4, policy="pattern",
            consumers={"B": _StubAgent(buffered=0, queued=2)},
        )
        shedder.note_backlog(5)
        assert not shedder.should_shed(_event("B"))

    def test_fused_consumer_hot_via_mb1_mb2(self):
        class FusedStub:
            def __init__(self, items1: int, items2: int) -> None:
                self.mb1 = _StubAgent._Buffer(items1)
                self.mb2 = _StubAgent._Buffer(items2)
                self.ms = []

        shedder = LoadShedder(
            bound=4, policy="pattern",
            consumers={"B": FusedStub(0, 2), "C": FusedStub(0, 0)},
        )
        shedder.note_backlog(5)
        assert not shedder.should_shed(_event("B"))
        assert shedder.should_shed(_event("C"))

    def test_critical_ceiling_sheds_even_hot_events(self):
        shedder = LoadShedder(
            bound=4, policy="pattern",
            consumers={"B": _StubAgent(buffered=3)},
        )
        shedder.note_backlog(9)  # > 2 * bound
        assert shedder.critical
        assert shedder.should_shed(_event("B"))

    def test_counts_report(self):
        shedder = LoadShedder(bound=2, policy="tail")
        shedder.note_backlog(3)
        shedder.should_shed(_event("B"))
        shedder.should_shed(_event("A"))
        shedder.should_shed(_event("A"))
        assert shedder.counts() == {
            "total": 3,
            "by_type": {"A": 2, "B": 1},
            "policy": "tail",
            "bound": 2,
        }

    def test_hard_ceiling_boundary_is_exactly_twice_the_bound(self):
        shedder = LoadShedder(
            bound=4, policy="pattern",
            consumers={"B": _StubAgent(buffered=3)},
        )
        shedder.note_backlog(8)  # == 2 * bound: hot events still protected
        assert shedder.overloaded
        assert not shedder.critical
        assert not shedder.should_shed(_event("B"))
        shedder.note_backlog(9)  # one past the ceiling: blind mode
        assert shedder.critical
        assert shedder.should_shed(_event("B"))

    def test_sustained_overload_sheds_every_sheddable_arrival(self):
        """Past the hard ceiling the shedder never lets anything but guard
        types through, no matter how long the overload lasts."""
        shedder = LoadShedder(
            bound=4, policy="pattern", guard_types=frozenset({"N"}),
            seed_types=frozenset({"A"}),
            consumers={"B": _StubAgent(buffered=3)},
        )
        for _ in range(50):
            shedder.note_backlog(100)  # sustained, far past 2 * bound
            assert shedder.should_shed(_event("A"))
            assert shedder.should_shed(_event("B"))
            assert not shedder.should_shed(_event("N"))
        assert shedder.shed_total == 100
        assert shedder.counts()["by_type"] == {"A": 50, "B": 50}

    def test_pressure_halves_the_effective_bound(self):
        shedder = LoadShedder(bound=8, policy="tail")
        assert shedder.effective_bound == 8
        shedder.pressure = True
        assert shedder.effective_bound == 4
        # Backlog between the halved and configured bound: overloaded only
        # under pressure.
        shedder.note_backlog(6)
        assert shedder.overloaded
        assert shedder.should_shed(_event("A"))
        shedder.pressure = False
        assert not shedder.overloaded
        assert not shedder.should_shed(_event("A"))

    def test_pressure_keeps_hard_ceiling_anchored(self):
        """Pressure makes the shedder eager, never blind: the critical
        ceiling stays at twice the *configured* bound."""
        shedder = LoadShedder(
            bound=8, policy="pattern",
            consumers={"B": _StubAgent(buffered=3)},
        )
        shedder.pressure = True
        shedder.note_backlog(10)  # past 2 * effective_bound, under 2 * bound
        assert shedder.overloaded
        assert not shedder.critical
        assert not shedder.should_shed(_event("B"))  # hot still protected

    def test_pressure_on_disabled_shedder_is_inert(self):
        shedder = LoadShedder(bound=0, policy="tail")
        shedder.pressure = True
        assert shedder.effective_bound == 0
        shedder.note_backlog(10_000)
        assert not shedder.overloaded
        assert not shedder.should_shed(_event("A"))

    def test_pressure_floor_is_one(self):
        shedder = LoadShedder(bound=1, policy="tail")
        shedder.pressure = True
        assert shedder.effective_bound == 1


class TestControlPlaneUnit:
    def _fed_plane(self, **kwargs) -> ControlPlane:
        plane = ControlPlane(window=5.0, min_items=4, **kwargs)
        plane.note_plan([4, 4], [1.0, 1.0])
        return plane

    def test_no_decisions_without_observations(self):
        plane = self._fed_plane()
        assert plane.epoch(10.0) == []
        assert plane.epochs == 1

    def test_drift_triggers_reallocate(self):
        plane = self._fed_plane()
        for _ in range(10):
            plane.observe_busy(0, 9.0)
            plane.observe_busy(1, 1.0)
        decisions = plane.epoch(10.0)
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.kind in ("reallocate", "migrate")
        assert decision.kind in DECISION_KINDS
        assert sum(decision.per_agent) == 8
        assert decision.per_agent[0] > decision.per_agent[1]
        # The estimator was reset: the same epoch later has no fresh signal.
        assert plane.estimator.items == 0

    def test_acting_epochs_are_rate_limited(self):
        plane = self._fed_plane()
        for _ in range(10):
            plane.observe_busy(0, 9.0)
            plane.observe_busy(1, 1.0)
        assert plane.epoch(10.0)
        for _ in range(10):
            plane.observe_busy(0, 9.0)
            plane.observe_busy(1, 1.0)
        # Within one window of the last action: suppressed.
        assert plane.epoch(12.0) == []
        assert plane.epoch(20.0)  # past the gap: acts again

    def test_shed_decision_is_edge_triggered(self):
        shedder = LoadShedder(bound=2, policy="tail")
        plane = self._fed_plane(shedder=shedder)
        shedder.note_backlog(100)
        first = plane.epoch(10.0)
        assert [d.kind for d in first] == ["shed"]
        # Still critical: no second edge.
        assert all(d.kind != "shed" for d in plane.epoch(11.0))
        shedder.note_backlog(0)
        plane.epoch(12.0)
        shedder.note_backlog(100)
        assert any(d.kind == "shed" for d in plane.epoch(13.0))

    def test_observation_floor_blocks_action(self):
        """Fewer than min_items busy observations since the last plan are
        noise: the plane must not act on them (the default floor is 64)."""
        plane = ControlPlane(window=5.0)
        plane.note_plan([4, 4], [1.0, 1.0])
        assert plane.min_items == 64
        for index in range(63):
            plane.observe_busy(index % 2, 9.0 if index % 2 == 0 else 1.0)
        assert plane.epoch(10.0) == []
        plane.observe_busy(0, 9.0)  # the 64th observation crosses the floor
        decisions = plane.epoch(20.0)
        assert decisions
        assert decisions[0].kind in ("reallocate", "migrate")

    def test_reset_on_replan_judges_post_replan_observations_only(self):
        """After a re-allocation the estimator restarts from the observed
        busy at replan time; load that keeps tracking the new allocation
        must not trigger a second action."""
        plane = self._fed_plane()
        for _ in range(10):
            plane.observe_busy(0, 9.0)
            plane.observe_busy(1, 1.0)
        decisions = plane.epoch(10.0)
        assert len(decisions) == 1
        new_allocation = list(decisions[0].per_agent)
        assert plane.estimator.per_agent == new_allocation
        assert plane.estimator.items == 0
        # Post-replan load lands exactly where the new plan predicted it.
        for _ in range(10):
            plane.observe_busy(0, 9.0)
            plane.observe_busy(1, 1.0)
        later = plane.epoch(20.0)  # past the epoch gap
        assert all(d.kind not in ("reallocate", "migrate") for d in later)

    def test_decision_as_dict_round_trips_json(self):
        decision = ReplanDecision(
            kind="migrate", epoch=3, ts=1.5, per_agent=(2, 1, 1),
            agent=0, partner=2, reason="drift moves 1 > allowed 1",
        )
        payload = json.loads(json.dumps(decision.as_dict()))
        assert payload["kind"] == "migrate"
        assert payload["per_agent"] == [2, 1, 1]
        assert payload["agent"] == 0
        assert payload["partner"] == 2


class _StubSlo:
    """Duck-typed stand-in for SloEngine: the plane only calls evaluate()."""

    def __init__(self):
        self.statuses: list[dict] = []

    def evaluate(self, now):
        return self.statuses


class TestSloTriggers:
    def _plane(self, **kwargs) -> ControlPlane:
        plane = ControlPlane(window=5.0, min_items=4, **kwargs)
        plane.note_plan([4, 4], [1.0, 1.0])
        return plane

    @staticmethod
    def _status(metric: str, status: str) -> dict:
        return {"metric": metric, "status": status, "burn": 1.0}

    def test_healthy_slo_changes_nothing(self):
        slo = _StubSlo()
        slo.statuses = [self._status("p95_latency", "ok")]
        plane = self._plane(slo=slo)
        assert plane.epoch(10.0) == []

    def test_latency_breach_forces_action_below_drift_threshold(self):
        # Mild skew: 0.6/0.4 shares put one unit out of place, which is
        # within the drift tolerance (allowed 2 of 8) — without an SLO
        # signal the plane leaves it alone.
        baseline = self._plane()
        for _ in range(10):
            baseline.observe_busy(0, 6.0)
            baseline.observe_busy(1, 4.0)
        assert baseline.epoch(10.0) == []

        slo = _StubSlo()
        slo.statuses = [self._status("p95_latency", "breach")]
        plane = self._plane(slo=slo)
        for _ in range(10):
            plane.observe_busy(0, 6.0)
            plane.observe_busy(1, 4.0)
        decisions = plane.epoch(10.0)
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.kind == "migrate"
        assert decision.reason.startswith("slo p95_latency breach:")
        assert decision.agent == 1 and decision.partner == 0

    def test_exhausted_budget_counts_as_hot(self):
        slo = _StubSlo()
        slo.statuses = [self._status("throughput", "exhausted")]
        plane = self._plane(slo=slo)
        for _ in range(10):
            plane.observe_busy(0, 6.0)
            plane.observe_busy(1, 4.0)
        decisions = plane.epoch(10.0)
        assert decisions and decisions[0].reason.startswith(
            "slo throughput breach:"
        )

    def test_pressure_valve_engages_and_releases(self):
        slo = _StubSlo()
        shedder = LoadShedder(bound=8, policy="tail")
        plane = self._plane(slo=slo, shedder=shedder)

        slo.statuses = [self._status("p95_latency", "breach")]
        engaged = plane.epoch(10.0)
        assert [d.kind for d in engaged] == ["shed"]
        assert "shed bound tightened to 4" in engaged[0].reason
        assert shedder.pressure is True
        # Still breaching: edge-triggered, no repeat decision.
        assert plane.epoch(11.0) == []

        # A recall breach means shedding is eating matches: release.
        slo.statuses = [self._status("recall", "breach")]
        released = plane.epoch(12.0)
        assert [d.kind for d in released] == ["shed"]
        assert "slo pressure released" in released[0].reason
        assert "shed bound restored to 8" in released[0].reason
        assert shedder.pressure is False

    def test_recall_breach_alone_never_tightens(self):
        slo = _StubSlo()
        shedder = LoadShedder(bound=8, policy="tail")
        plane = self._plane(slo=slo, shedder=shedder)
        slo.statuses = [self._status("recall", "breach")]
        assert plane.epoch(10.0) == []
        assert shedder.pressure is False

    def test_recall_breach_vetoes_pressure_under_latency_breach(self):
        # Both hot: tightening the shed bound would trade away even more
        # recall, so the valve stays open while the allocation still acts.
        slo = _StubSlo()
        shedder = LoadShedder(bound=8, policy="tail")
        plane = self._plane(slo=slo, shedder=shedder)
        slo.statuses = [
            self._status("p95_latency", "breach"),
            self._status("recall", "breach"),
        ]
        for _ in range(10):
            plane.observe_busy(0, 6.0)
            plane.observe_busy(1, 4.0)
        decisions = plane.epoch(10.0)
        assert shedder.pressure is False
        assert [d.kind for d in decisions] == ["migrate"]


def _bursty_workload():
    from repro.datasets import BurstyConfig, generate_bursty_stream

    config = BurstyConfig(
        symbols=("S0", "S1", "S2", "S3"),
        base_rate=40.0,
        num_phases=4,
        events_per_phase=120,
        seed=7,
    )
    return list(generate_bursty_stream(config))


_ADAPT_PACE_CACHE: dict[str, float] = {}


def _adaptive_run(strategy: str = "hypersonic"):
    # The pattern spans the bursty stream's symbol types, so the rotating
    # hot subset translates directly into per-agent load swings.  Pace is
    # derived from an unshedded reference run (as the bench does): fast
    # enough to overload, slow enough that work still flows.
    pattern = Pattern.sequence(["S0", "S1", "S2"], window=0.5)
    events = _bursty_workload()
    if strategy not in _ADAPT_PACE_CACHE:
        reference = simulate(strategy, pattern, events, num_cores=4)
        _ADAPT_PACE_CACHE[strategy] = 1.0 / max(
            1.5 * reference.throughput, 1e-12
        )
    return simulate(
        strategy, pattern, events, num_cores=4,
        adapt="on", shed_bound=8, shed_policy="pattern",
        pace=_ADAPT_PACE_CACHE[strategy],
    )


class TestControllerDeterminism:
    def test_decision_sequence_is_byte_identical(self):
        first = _adaptive_run()
        second = _adaptive_run()
        serial = [
            json.dumps(
                run.extra["control"]["decisions"], sort_keys=True
            ).encode()
            for run in (first, second)
        ]
        assert serial[0] == serial[1]
        assert first.extra["control"]["epochs"] == (
            second.extra["control"]["epochs"]
        )
        assert first.extra["shed"] == second.extra["shed"]
        assert first.matches == second.matches

    def test_adaptive_run_reports_control_extras(self):
        result = _adaptive_run()
        control = result.extra["control"]
        assert control["epochs"] > 0
        for decision in control["decisions"]:
            assert decision["kind"] in DECISION_KINDS
        shed = result.extra["shed"]
        assert shed["bound"] == 8
        assert shed["policy"] == "pattern"

    def test_adapt_without_shedding_preserves_matches(self):
        """Re-allocation/fusion alone must never change the match set."""
        pattern = Pattern.sequence(["A", "B", "C"], window=6.0)
        events = make_stream(num_events=400, seed=11)
        plain = simulate("hypersonic", pattern, events, num_cores=4)
        adapted = simulate(
            "hypersonic", pattern, events, num_cores=4, adapt="on"
        )
        assert adapted.matches == plain.matches
        assert "shed" not in adapted.extra or (
            adapted.extra["shed"]["total"] == 0
        )


class TestAdaptOffGoldenParity:
    """``adapt="off"`` must be bit-identical to the frozen goldens."""

    @pytest.fixture(scope="class")
    def goldens(self):
        return json.loads(Path(GOLDEN_PATH).read_text(encoding="utf-8"))

    @pytest.mark.parametrize("strategy", ["hypersonic", "state"])
    def test_adapt_off_matches_golden(self, goldens, strategy):
        kwargs = {"agent_dynamic": True} if strategy == "hypersonic" else {}
        result = simulate(
            strategy, golden_pattern(), golden_workload(),
            num_cores=NUM_CORES, adapt="off", shed_bound=0, **kwargs
        )
        assert result_payload(result) == goldens["closed_loop"][strategy]


class TestRunnerValidation:
    def test_invalid_adapt_value_rejected(self):
        pattern = Pattern.sequence(["A", "B"], window=4.0)
        with pytest.raises(SimulationError):
            simulate("hypersonic", pattern, [], num_cores=2, adapt="maybe")

    def test_negative_shed_bound_rejected(self):
        pattern = Pattern.sequence(["A", "B"], window=4.0)
        with pytest.raises(SimulationError):
            simulate("hypersonic", pattern, [], num_cores=2, shed_bound=-1)

    @pytest.mark.parametrize("strategy", ["sequential", "rip", "llsf"])
    def test_adaptation_requires_agent_chain(self, strategy):
        pattern = Pattern.sequence(["A", "B"], window=4.0)
        with pytest.raises(SimulationError):
            simulate(strategy, pattern, [], num_cores=2, adapt="on")
        with pytest.raises(SimulationError):
            simulate(strategy, pattern, [], num_cores=2, shed_bound=4)


class TestNegationGuardShedding:
    """The shedder must never starve a negation guard, end to end.

    Unit coverage of ``guard_types`` lives in :class:`TestLoadShedder`;
    this exercises the real wiring — a compiled NEG pattern's guards flow
    from :class:`~repro.core.nfa.ChainNFA` through the simulated agents
    into the shedder's exempt set without any manual configuration.
    """

    @pytest.fixture(scope="class")
    def shed_run(self):
        pattern = Pattern.sequence(
            ["A", "X", "C"], window=6.0,
            names=["p1", "p2", "p3"], negated=[1],
        )
        events = make_stream(num_events=800, seed=5)
        return pattern, simulate(
            "hypersonic", pattern, events, num_cores=4,
            shed_bound=1, shed_policy="pattern",
        )

    def test_shedding_engaged(self, shed_run):
        _, result = shed_run
        assert result.extra["shed"]["total"] > 0

    def test_negated_type_never_shed(self, shed_run):
        _, result = shed_run
        assert "X" not in result.extra["shed"]["by_type"]

    def test_positive_types_carry_the_cuts(self, shed_run):
        pattern, result = shed_run
        positive = {item.event_type.name for item in pattern.items}
        assert set(result.extra["shed"]["by_type"]) <= positive
