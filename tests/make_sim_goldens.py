"""Regenerate the simulator parity goldens (tests/data/sim_goldens.json).

Run manually after an *intentional* change to simulated numbers:

    PYTHONPATH=src:. python tests/make_sim_goldens.py

The goldens pin the full :class:`~repro.simulator.SimResult` of every
strategy on a fixed workload.  The kernel refactor (PR 2) was verified by
generating this file from the pre-refactor seed and asserting bit-identical
results afterwards; keeping the file frozen extends that guarantee to all
later PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "data" / "sim_goldens.json"

PATTERN_TYPES = ["A", "B", "C"]
PATTERN_WINDOW = 6.0
NUM_EVENTS = 600
STREAM_SEED = 31
NUM_CORES = 4


def golden_workload():
    from tests.conftest import make_stream

    return make_stream(num_events=NUM_EVENTS, seed=STREAM_SEED)


def golden_pattern():
    from repro.core import Pattern

    return Pattern.sequence(PATTERN_TYPES, window=PATTERN_WINDOW)


def result_payload(result) -> dict:
    """A JSON-stable dump of every SimResult field (obs summary excluded)."""
    extra = {k: v for k, v in result.extra.items() if k != "obs"}
    return {
        "strategy": result.strategy,
        "num_units": result.num_units,
        "events": result.events,
        "matches": result.matches,
        "total_time": result.total_time,
        "throughput": result.throughput,
        "avg_latency": result.avg_latency,
        "p95_latency": result.p95_latency,
        "max_latency": result.max_latency,
        "peak_memory_bytes": result.peak_memory_bytes,
        "total_comparisons": result.total_comparisons,
        "total_work": result.total_work,
        "duplication_factor": result.duplication_factor,
        "unit_busy": list(result.unit_busy),
        "extra": extra,
    }


def collect() -> dict:
    from repro.simulator import STRATEGIES, simulate

    pattern = golden_pattern()
    events = golden_workload()
    goldens: dict = {"closed_loop": {}, "paced": {}, "measure_latency": {}}
    for strategy in STRATEGIES:
        kwargs = {"agent_dynamic": True} if strategy == "hypersonic" else {}
        result = simulate(
            strategy, pattern, events, num_cores=NUM_CORES, **kwargs
        )
        goldens["closed_loop"][strategy] = result_payload(result)
    for strategy in ("hypersonic", "rip"):
        result = simulate(
            strategy, pattern, events, num_cores=NUM_CORES, pace=3.0
        )
        goldens["paced"][strategy] = result_payload(result)
    result = simulate(
        "sequential", pattern, events, num_cores=1, measure_latency=True
    )
    goldens["measure_latency"]["sequential"] = result_payload(result)
    return goldens


def main() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        json.dump(collect(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
