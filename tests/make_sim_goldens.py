"""Regenerate the repo's golden files — single entry point.

Three golden sets live under ``tests/data/``; run this after an
*intentional* change to the corresponding behaviour and review the diff
before committing:

    PYTHONPATH=src:. python tests/make_sim_goldens.py               # all
    PYTHONPATH=src:. python tests/make_sim_goldens.py --which sim
    PYTHONPATH=src:. python tests/make_sim_goldens.py --which trace
    PYTHONPATH=src:. python tests/make_sim_goldens.py --which report

* ``sim`` — ``sim_goldens.json``: the full :class:`~repro.simulator.SimResult`
  of every strategy on a fixed workload.  The kernel refactor (PR 2) was
  verified by generating this file from the pre-refactor seed and
  asserting bit-identical results afterwards; keeping the file frozen
  extends that guarantee to all later PRs.
* ``trips`` — ``trip_chain_goldens.json``: every strategy's SimResult on
  the trip-chain Kleene workload (``SEQ(start, ride+, end)`` over the
  CitiBike-style dataset).  A separate file from ``sim_goldens.json`` on
  purpose: the richer pattern language is strictly additive, so the
  legacy goldens must stay byte-identical — ``--which sim`` *raises* if
  regenerating them would change the committed bytes (pass
  ``--force-sim`` after an intentional behaviour change).
* ``trace`` — ``golden_chrome_trace.json``: the Chrome ``trace_event``
  export of the tiny traced workload (``tests/test_obs.tiny_trace``).  A
  diff means the exporter format or the simulator's traced behaviour
  changed.
* ``report`` — ``golden_obs_report.json``: the calibration report and
  latency breakdown computed from that same tiny trace, replayed through
  the JSONL round-trip so the golden also pins trace-file replayability.
* ``dashboard`` — ``golden_dashboard_frame.txt``: the terminal
  dashboard's final frame rendered from that same tiny trace via the
  JSONL replay path (``repro watch --final``).  A diff means the frame
  renderer or the traced behaviour changed.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_PATH = DATA_DIR / "sim_goldens.json"
TRACE_GOLDEN_PATH = DATA_DIR / "golden_chrome_trace.json"
REPORT_GOLDEN_PATH = DATA_DIR / "golden_obs_report.json"
DASHBOARD_GOLDEN_PATH = DATA_DIR / "golden_dashboard_frame.txt"

PATTERN_TYPES = ["A", "B", "C"]
PATTERN_WINDOW = 6.0
NUM_EVENTS = 600
STREAM_SEED = 31
NUM_CORES = 4

TRIP_GOLDEN_PATH = DATA_DIR / "trip_chain_goldens.json"
TRIP_WINDOW = 4.0
TRIP_NUM_TRIPS = 80
TRIP_NUM_BIKES = 8
TRIP_SEED = 13


def golden_workload():
    from tests.conftest import make_stream

    return make_stream(num_events=NUM_EVENTS, seed=STREAM_SEED)


def golden_pattern():
    from repro.core import Pattern

    return Pattern.sequence(PATTERN_TYPES, window=PATTERN_WINDOW)


def trip_workload():
    from repro.datasets.trips import TripConfig, generate_trip_stream

    return list(generate_trip_stream(TripConfig(
        num_trips=TRIP_NUM_TRIPS, num_bikes=TRIP_NUM_BIKES, seed=TRIP_SEED,
    )))


def trip_pattern():
    from repro.workloads.queries import trip_chain_query

    return trip_chain_query(TRIP_WINDOW).pattern


def result_payload(result) -> dict:
    """A JSON-stable dump of every SimResult field (obs summary excluded)."""
    extra = {k: v for k, v in result.extra.items() if k != "obs"}
    return {
        "strategy": result.strategy,
        "num_units": result.num_units,
        "events": result.events,
        "matches": result.matches,
        "total_time": result.total_time,
        "throughput": result.throughput,
        "avg_latency": result.avg_latency,
        "p95_latency": result.p95_latency,
        "max_latency": result.max_latency,
        "peak_memory_bytes": result.peak_memory_bytes,
        "total_comparisons": result.total_comparisons,
        "total_work": result.total_work,
        "duplication_factor": result.duplication_factor,
        "unit_busy": list(result.unit_busy),
        "extra": extra,
    }


def collect() -> dict:
    from repro.simulator import STRATEGIES, simulate

    pattern = golden_pattern()
    events = golden_workload()
    goldens: dict = {"closed_loop": {}, "paced": {}, "measure_latency": {}}
    for strategy in STRATEGIES:
        kwargs = {"agent_dynamic": True} if strategy == "hypersonic" else {}
        result = simulate(
            strategy, pattern, events, num_cores=NUM_CORES, **kwargs
        )
        goldens["closed_loop"][strategy] = result_payload(result)
    # The control plane must be a strict no-op when disabled: an explicit
    # ``adapt="off"`` run has to reproduce the closed-loop payload bit for
    # bit.  Checked here (not stored) so the golden file stays unchanged.
    for strategy in ("hypersonic", "state"):
        kwargs = {"agent_dynamic": True} if strategy == "hypersonic" else {}
        result = simulate(
            strategy, pattern, events, num_cores=NUM_CORES,
            adapt="off", shed_bound=0, **kwargs
        )
        if result_payload(result) != goldens["closed_loop"][strategy]:
            raise RuntimeError(
                f"adapt='off' diverged from the closed-loop golden for "
                f"{strategy!r}; the disabled control plane must be a no-op"
            )
    for strategy in ("hypersonic", "rip"):
        result = simulate(
            strategy, pattern, events, num_cores=NUM_CORES, pace=3.0
        )
        goldens["paced"][strategy] = result_payload(result)
    result = simulate(
        "sequential", pattern, events, num_cores=1, measure_latency=True
    )
    goldens["measure_latency"]["sequential"] = result_payload(result)
    return goldens


def collect_trip_chain() -> dict:
    from repro.simulator import STRATEGIES, simulate

    pattern = trip_pattern()
    events = trip_workload()
    goldens: dict = {"closed_loop": {}}
    counts = set()
    for strategy in STRATEGIES:
        kwargs = {"agent_dynamic": True} if strategy == "hypersonic" else {}
        result = simulate(
            strategy, pattern, events, num_cores=NUM_CORES, **kwargs
        )
        goldens["closed_loop"][strategy] = result_payload(result)
        counts.add(result.matches)
    if len(counts) != 1 or 0 in counts:
        raise RuntimeError(
            f"trip-chain strategies disagree or found nothing: {counts}"
        )
    return goldens


def _serialize(goldens: dict) -> str:
    return json.dumps(goldens, indent=1, sort_keys=True) + "\n"


def write_sim_goldens(force: bool = False) -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = _serialize(collect())
    # The legacy goldens predate the richer pattern language; Kleene and
    # negation are strictly opt-in, so regenerating this file must be a
    # byte-level no-op.  Raise on drift instead of silently rewriting.
    if GOLDEN_PATH.exists() and not force:
        committed = GOLDEN_PATH.read_text(encoding="utf-8")
        if committed != payload:
            raise RuntimeError(
                f"regenerating {GOLDEN_PATH} would change its bytes; the "
                "default workload must be unaffected by pattern-language "
                "extensions.  Re-run with --force-sim if the change is "
                "intentional."
            )
    GOLDEN_PATH.write_text(payload, encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")


def write_trip_goldens() -> None:
    TRIP_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    TRIP_GOLDEN_PATH.write_text(
        _serialize(collect_trip_chain()), encoding="utf-8"
    )
    print(f"wrote {TRIP_GOLDEN_PATH}")


def write_trace_golden() -> None:
    from repro.obs import chrome_trace
    from tests.test_obs import tiny_trace

    tracer, _result = tiny_trace()
    TRACE_GOLDEN_PATH.write_text(
        json.dumps(chrome_trace(tracer), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {TRACE_GOLDEN_PATH}")


def obs_report_payload(tmp_dir: Path) -> dict:
    """Calibration + latency breakdown of the tiny trace, via JSONL replay."""
    from repro.obs import (
        calibration_report,
        latency_breakdown,
        read_jsonl,
        write_jsonl,
    )
    from tests.test_obs import tiny_trace

    tracer, _result = tiny_trace()
    path = tmp_dir / "tiny_trace.jsonl"
    write_jsonl(str(path), tracer)
    events = read_jsonl(str(path))
    return {
        "calibration": calibration_report(events),
        "latency_breakdown": latency_breakdown(events),
    }


def write_report_golden() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        payload = obs_report_payload(Path(tmp))
    REPORT_GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {REPORT_GOLDEN_PATH}")


def dashboard_frame_payload(tmp_dir: Path) -> str:
    """Final dashboard frame of the tiny trace, via JSONL replay."""
    from repro.obs import final_frame, read_jsonl, write_jsonl
    from tests.test_obs import tiny_trace

    tracer, _result = tiny_trace()
    path = tmp_dir / "tiny_trace.jsonl"
    write_jsonl(str(path), tracer)
    return final_frame(read_jsonl(str(path)), strategy="hypersonic")


def write_dashboard_golden() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        frame = dashboard_frame_payload(Path(tmp))
    DASHBOARD_GOLDEN_PATH.write_text(frame + "\n", encoding="utf-8")
    print(f"wrote {DASHBOARD_GOLDEN_PATH}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--which",
        choices=("sim", "trips", "trace", "report", "dashboard", "all"),
        default="all",
        help="which golden set to regenerate (default: all)",
    )
    parser.add_argument(
        "--force-sim", action="store_true",
        help="allow --which sim to rewrite sim_goldens.json on drift",
    )
    args = parser.parse_args()
    which = args.which
    if which in ("sim", "all"):
        write_sim_goldens(force=args.force_sim)
    if which in ("trips", "all"):
        write_trip_goldens()
    if which in ("trace", "all"):
        write_trace_golden()
    if which in ("report", "all"):
        write_report_golden()
    if which in ("dashboard", "all"):
        write_dashboard_golden()


if __name__ == "__main__":
    main()
