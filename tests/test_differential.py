"""Differential suite: every execution strategy, one match set.

Randomized (seeded) small workloads are run through the sequential
reference engine, the hybrid :class:`HypersonicSimulation`, and every
partition baseline; all of them must emit *exactly* the same match set —
keys, not just counts.  The grid is then repeated with fitted cost
parameters (from :func:`repro.costmodel.fitting.fit_from_trace` on a
trace of the same workload) standing in for the defaults: cost constants
steer allocation and the virtual clock, never correctness, so tuning can
be deployed without re-validating detection semantics.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    JSQEngine,
    LLSFEngine,
    RIPEngine,
    RREngine,
    StateParallelEngine,
)
from repro.core import Pattern
from repro.costmodel import CostParameters, fit_from_trace
from repro.hypersonic.engine import HypersonicConfig
from repro.obs import TraceRecorder
from repro.simulator import STRATEGIES, simulate
from repro.simulator.hypersonic_sim import HypersonicSimulation

from tests.conftest import make_stream, reference_matches

#: (pattern, stream seed) grid — small enough that the full differential
#: matrix stays in test-suite time, varied enough to cross chunk/segment
#: boundaries and exercise kleene + negation ownership rules.
WORKLOADS = [
    (Pattern.sequence(["A", "B", "C"], window=6.0), 0),
    (Pattern.sequence(["A", "B", "C"], window=6.0), 11),
    (Pattern.sequence(["A", "B"], window=3.0), 2),
    (Pattern.sequence(["A", "B", "C"], window=5.0, kleene=[1]), 3),
    (Pattern.sequence(["A", "X", "B", "C"], window=6.0, negated=[1]), 4),
]

NUM_EVENTS = 180
NUM_UNITS = 4


def workload(seed: int):
    return make_stream(num_events=NUM_EVENTS, seed=seed)


def reference_keys(pattern, events) -> set:
    return {match.key for match in reference_matches(pattern, events)}


def fitted_parameters(pattern, events) -> CostParameters:
    """Cost constants fitted to a trace of this very workload."""
    recorder = TraceRecorder()
    simulate(
        "hypersonic", pattern, events, num_cores=NUM_UNITS, seed=7,
        tracer=recorder,
    )
    fit = fit_from_trace(recorder)
    return fit.parameters if fit is not None else CostParameters()


def partition_engines(pattern):
    return [
        RIPEngine(pattern, NUM_UNITS, chunk_size=32),
        RREngine(pattern, NUM_UNITS),
        JSQEngine(pattern, NUM_UNITS),
        LLSFEngine(pattern, NUM_UNITS),
    ]


@pytest.mark.parametrize("pattern,seed", WORKLOADS)
def test_partition_baselines_match_sequential(pattern, seed):
    events = workload(seed)
    expected = reference_keys(pattern, events)
    for engine in partition_engines(pattern):
        produced = {match.key for match in engine.run(events)}
        assert produced == expected, type(engine).__name__
    state = StateParallelEngine(pattern)
    assert {match.key for match in state.run(events)} == expected


@pytest.mark.parametrize("pattern,seed", WORKLOADS)
@pytest.mark.parametrize("tuned", [False, True],
                         ids=["default_costs", "fitted_costs"])
def test_hypersonic_simulation_matches_sequential(pattern, seed, tuned):
    events = workload(seed)
    expected = reference_keys(pattern, events)
    model = fitted_parameters(pattern, events) if tuned else None
    sim = HypersonicSimulation(
        pattern, NUM_UNITS, model_costs=model
    )
    sim.run(events)
    assert {match.key for match in sim.matches} == expected


@pytest.mark.parametrize("pattern,seed", WORKLOADS)
@pytest.mark.parametrize("tuned", [False, True],
                         ids=["default_costs", "fitted_costs"])
def test_simulated_strategies_agree_on_match_count(pattern, seed, tuned):
    """The simulated grid (virtual clock on) under default and fitted
    constants: every strategy detects exactly the reference count."""
    events = workload(seed)
    expected = len(reference_keys(pattern, events))
    costs = fitted_parameters(pattern, events) if tuned else None
    for strategy in STRATEGIES:
        kwargs = {}
        if strategy == "rip":
            kwargs["chunk_size"] = 32
        result = simulate(
            strategy, pattern, events, num_cores=NUM_UNITS, costs=costs,
            seed=7, **kwargs,
        )
        assert result.matches == expected, strategy


@pytest.mark.parametrize("pattern,seed", WORKLOADS)
@pytest.mark.parametrize("batch_size", [2, 7, 64])
def test_batched_hypersonic_matches_scalar_oracle(pattern, seed, batch_size):
    """Batched execution (vectorized kernels, micro-batched splitter and
    agents) must emit exactly the scalar oracle's match-key set."""
    events = workload(seed)
    expected = reference_keys(pattern, events)
    sim = HypersonicSimulation(pattern, NUM_UNITS, batch_size=batch_size)
    sim.run(events)
    assert {match.key for match in sim.matches} == expected


@pytest.mark.parametrize("pattern,seed", WORKLOADS[:2])
def test_all_strategies_accept_batch_size(pattern, seed):
    """`simulate(..., batch_size=64)` is valid for all seven strategies
    (a documented no-op for the event-major partition simulators) and
    never changes the detected match count."""
    events = workload(seed)
    expected = len(reference_keys(pattern, events))
    for strategy in STRATEGIES:
        kwargs = {}
        if strategy == "rip":
            kwargs["chunk_size"] = 32
        result = simulate(
            strategy, pattern, events, num_cores=NUM_UNITS, seed=7,
            batch_size=64, **kwargs,
        )
        assert result.matches == expected, strategy


@pytest.mark.parametrize("pattern,seed", [
    (Pattern.sequence(["A", "B", "C"], window=6.0), 0),
    (Pattern.sequence(["A", "B", "C", "D"], window=6.0), 5),
])
@pytest.mark.parametrize("batch_size", [1, 2, 16])
def test_fused_batched_matches_scalar_oracle(pattern, seed, batch_size):
    """Fused agents (MB1/EB1 + MB2/EB2 cores) under batched execution:
    the columnar kernels over both stage groups must reproduce exactly
    the scalar match-key set, including the batch_size=1 degenerate."""
    events = workload(seed)
    expected = reference_keys(pattern, events)
    config = HypersonicConfig(fusion=True, force_fusion_pairs=((1, 2),))
    sim = HypersonicSimulation(
        pattern, NUM_UNITS, config=config, batch_size=batch_size
    )
    sim.run(events)
    assert {match.key for match in sim.matches} == expected


@pytest.mark.parametrize("pattern,seed", WORKLOADS)
def test_adaptive_closed_loop_preserves_match_set(pattern, seed):
    """``adapt="on"`` without shedding re-allocates and links agents but
    must never change *what* is detected — same keys as the oracle."""
    events = workload(seed)
    expected = reference_keys(pattern, events)
    sim = HypersonicSimulation(pattern, NUM_UNITS, adapt="on")
    sim.run(events)
    assert {match.key for match in sim.matches} == expected


def test_batched_results_backend_independent(monkeypatch):
    """The numpy kernel and the pure-Python fallback produce bit-identical
    batched simulations — same matches, same virtual clock."""
    import repro.core.vectorized as vec

    pattern, seed = WORKLOADS[0]
    events = workload(seed)

    def run() -> tuple:
        sim = HypersonicSimulation(pattern, NUM_UNITS, batch_size=16)
        result = sim.run(events)
        keys = tuple(sorted(match.key for match in sim.matches))
        return (result.throughput, result.total_time, keys)

    with_backend = run()
    monkeypatch.setattr(vec, "np", None)
    without_backend = run()
    assert with_backend == without_backend


def test_fitted_parameters_differ_from_defaults():
    """Sanity: the fitted-costs leg of the grid is not vacuously the
    default-costs leg again."""
    pattern, seed = WORKLOADS[0]
    events = workload(seed)
    fitted = fitted_parameters(pattern, events)
    assert fitted != CostParameters()


# --------------------------------------------------------------------- #
# Brute-force oracle differential                                        #
# --------------------------------------------------------------------- #
#
# The oracle (tests/oracle.py) evaluates patterns by definition and
# shares no code with any engine.  Every cell of this grid — operator
# (Kleene/NEG) x selection/consumption policy x window x dataset — must
# produce *identical match-key sets* across the oracle, the sequential
# reference, the hybrid simulation (scalar and batched), and every
# partition baseline.

def _policy_variants(types, window, **base):
    variants = []
    for selection in ("skip-till-any-match", "skip-till-next-match"):
        for consumption in ("reuse", "consume"):
            variants.append(Pattern.sequence(
                types, window=window, selection=selection,
                consumption=consumption, **base,
            ))
    return variants


def _trip_workload(seed: int):
    from repro.datasets.trips import TripConfig, generate_trip_stream

    return list(generate_trip_stream(TripConfig(
        num_trips=30, num_bikes=4, dropout=0.3, seed=seed,
    )))


def _oracle_cells():
    cells = []
    for window in (4.0, 6.0):
        for pattern in _policy_variants(["A", "B", "C"], window, kleene=[1]):
            cells.append((pattern, "synthetic", 3))
        for pattern in _policy_variants(
            ["A", "X", "B"], window, negated=[1]
        ):
            cells.append((pattern, "synthetic", 4))
    from repro.workloads.queries import trip_chain_query, trip_negation_query

    for builder in (trip_chain_query, trip_negation_query):
        for selection, consumption in (
            (None, None), ("skip-till-next-match", "consume"),
        ):
            spec = builder(
                4.0, selection=selection, consumption=consumption
            )
            cells.append((spec.pattern, "trips", 9))
    return cells


def _oracle_cell_id(cell):
    pattern, dataset, _ = cell
    shape = (
        "kleene" if any(i.is_kleene for i in pattern.items)
        else "negation" if any(i.is_negated for i in pattern.items)
        else "seq"
    )
    return (
        f"{dataset}-{shape}-w{pattern.window:g}-"
        f"{pattern.selection.value}-{pattern.consumption.value}"
    )


ORACLE_CELLS = _oracle_cells()


def _oracle_events(dataset: str, seed: int):
    if dataset == "trips":
        return _trip_workload(seed)
    return make_stream(num_events=120, seed=seed)


@pytest.mark.parametrize(
    "pattern,dataset,seed", ORACLE_CELLS,
    ids=[_oracle_cell_id(cell) for cell in ORACLE_CELLS],
)
def test_every_engine_matches_the_oracle(pattern, dataset, seed):
    from tests.oracle import oracle_keys

    events = _oracle_events(dataset, seed)
    expected = oracle_keys(pattern, events)
    assert reference_keys(pattern, events) == expected
    for engine in partition_engines(pattern):
        produced = {match.key for match in engine.run(events)}
        assert produced == expected, type(engine).__name__
    state = StateParallelEngine(pattern)
    assert {match.key for match in state.run(events)} == expected
    for batch_size in (1, 16):
        sim = HypersonicSimulation(
            pattern, NUM_UNITS, batch_size=batch_size
        )
        sim.run(events)
        produced = {match.key for match in sim.matches}
        assert produced == expected, f"batch_size={batch_size}"


def test_oracle_grid_is_not_degenerate():
    """At least one Kleene, one negation, and one trips cell of the grid
    produce matches — otherwise the differential above proves nothing."""
    from tests.oracle import oracle_keys

    populated = set()
    for pattern, dataset, seed in ORACLE_CELLS:
        if oracle_keys(pattern, _oracle_events(dataset, seed)):
            shape = (
                "kleene" if any(i.is_kleene for i in pattern.items)
                else "negation"
            )
            populated.add(shape)
            populated.add(dataset)
    assert {"kleene", "negation", "synthetic", "trips"} <= populated
