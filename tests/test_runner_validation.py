"""Unit tests for runner.simulate argument validation.

These lock in the bugfix where a typo like ``allocation="costs"`` sailed
through ``simulate()`` and only blew up deep inside ``allocate_units``,
and where nonsensical pacing/chunking knobs silently skewed the metrics.
"""

import pytest

from tests.conftest import make_stream
from repro.core import Pattern
from repro.core.errors import SimulationError
from repro.simulator import ALLOCATION_SCHEMES, simulate

PATTERN = Pattern.sequence(["A", "B", "C"], window=6.0)
EVENTS = make_stream(num_events=50, seed=11)


class TestSimulateValidation:
    def test_unknown_allocation_rejected_up_front(self):
        with pytest.raises(SimulationError) as err:
            simulate("hypersonic", PATTERN, EVENTS, num_cores=4,
                     allocation="costs")
        message = str(err.value)
        assert "costs" in message
        for accepted in ALLOCATION_SCHEMES:
            assert accepted in message

    def test_allocation_validated_for_every_strategy(self):
        # Even strategies that ignore the knob reject garbage, so a typo
        # cannot hide behind the strategy choice.
        with pytest.raises(SimulationError):
            simulate("sequential", PATTERN, EVENTS, num_cores=1,
                     allocation="equql")

    @pytest.mark.parametrize("chunk_size", [0, -5])
    def test_nonpositive_chunk_size_rejected(self, chunk_size):
        with pytest.raises(SimulationError) as err:
            simulate("rip", PATTERN, EVENTS, num_cores=4,
                     chunk_size=chunk_size)
        assert str(chunk_size) in str(err.value)

    @pytest.mark.parametrize("latency_load", [0.0, -0.1, 1.0, 1.5])
    def test_latency_load_outside_open_interval_rejected(self, latency_load):
        with pytest.raises(SimulationError) as err:
            simulate("sequential", PATTERN, EVENTS, num_cores=1,
                     latency_load=latency_load)
        assert "(0, 1)" in str(err.value)

    @pytest.mark.parametrize("pace", [0.0, -1.0])
    def test_nonpositive_pace_rejected(self, pace):
        with pytest.raises(SimulationError):
            simulate("sequential", PATTERN, EVENTS, num_cores=1, pace=pace)

    def test_nonpositive_num_cores_rejected(self):
        with pytest.raises(SimulationError):
            simulate("hypersonic", PATTERN, EVENTS, num_cores=0)

    def test_nonpositive_inflight_cap_rejected(self):
        with pytest.raises(SimulationError):
            simulate("sequential", PATTERN, EVENTS, num_cores=1,
                     inflight_cap=0)

    def test_valid_arguments_still_accepted(self):
        result = simulate(
            "hypersonic", PATTERN, EVENTS, num_cores=4,
            allocation="equal", chunk_size=16, latency_load=0.5,
        )
        assert result.matches >= 0


class TestBackendValidation:
    """The --backend/--procs combos fail fast with a clear message — a
    procs run with a planner feature must never hang or die deep inside
    the worker pool."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError) as err:
            simulate("hypersonic", PATTERN, EVENTS, num_cores=2,
                     backend="processes")
        assert "virtual" in str(err.value) and "procs" in str(err.value)

    def test_procs_without_procs_backend_rejected(self):
        with pytest.raises(SimulationError) as err:
            simulate("hypersonic", PATTERN, EVENTS, num_cores=2, procs=2)
        assert "backend" in str(err.value)

    def test_start_method_without_procs_backend_rejected(self):
        with pytest.raises(SimulationError):
            simulate("hypersonic", PATTERN, EVENTS, num_cores=2,
                     start_method="spawn")

    def test_procs_backend_requires_hypersonic(self):
        with pytest.raises(SimulationError) as err:
            simulate("rip", PATTERN, EVENTS, num_cores=2, backend="procs")
        assert "hypersonic" in str(err.value)

    @pytest.mark.parametrize("procs", [0, -3])
    def test_nonpositive_procs_rejected(self, procs):
        with pytest.raises(SimulationError) as err:
            simulate("hypersonic", PATTERN, EVENTS, num_cores=2,
                     backend="procs", procs=procs)
        assert str(procs) in str(err.value)

    def test_unknown_start_method_rejected(self):
        with pytest.raises(SimulationError) as err:
            simulate("hypersonic", PATTERN, EVENTS, num_cores=2,
                     backend="procs", start_method="clone")
        assert "clone" in str(err.value)

    def test_procs_with_adapt_rejected_with_clear_message(self):
        with pytest.raises(SimulationError) as err:
            simulate("hypersonic", PATTERN, EVENTS, num_cores=2,
                     backend="procs", adapt="on")
        message = str(err.value)
        assert "adapt" in message and "virtual" in message

    @pytest.mark.parametrize("kwargs", [
        {"shed_bound": 8},
        {"fusion": True},
        {"agent_dynamic": True},
        {"measure_latency": True},
        {"pace": 0.5},
    ])
    def test_procs_with_planner_features_rejected(self, kwargs):
        with pytest.raises(SimulationError) as err:
            simulate("hypersonic", PATTERN, EVENTS, num_cores=2,
                     backend="procs", **kwargs)
        assert "procs" in str(err.value)
