"""SLO specs, windowed evaluation, burn accounting, live==replay parity."""

import json

import pytest

from repro.obs import (
    DEFAULT_OBJECTIVE,
    SLO_METRICS,
    SloEngine,
    SloSpec,
    SloTracer,
    slo_report,
)
from repro.obs.tracer import TraceKind, TraceRecorder


class TestSloSpec:
    def test_defaults(self):
        spec = SloSpec("p95_latency", bound=5.0, window=1.0)
        assert spec.objective == DEFAULT_OBJECTIVE
        assert spec.as_dict() == {
            "metric": "p95_latency",
            "bound": 5.0,
            "window": 1.0,
            "objective": DEFAULT_OBJECTIVE,
        }

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO metric"):
            SloSpec("p99_latency", bound=5.0, window=1.0)

    @pytest.mark.parametrize("window", [0.0, -1.0])
    def test_non_positive_window_rejected(self, window):
        with pytest.raises(ValueError, match="window must be > 0"):
            SloSpec("recall", bound=0.9, window=window)

    @pytest.mark.parametrize("objective", [0.0, 1.0, 1.5, -0.1])
    def test_objective_outside_open_interval_rejected(self, objective):
        with pytest.raises(ValueError, match="objective"):
            SloSpec("recall", bound=0.9, window=1.0, objective=objective)

    def test_negative_latency_ceiling_rejected(self):
        with pytest.raises(ValueError, match="latency ceiling"):
            SloSpec("p95_latency", bound=-1.0, window=1.0)

    @pytest.mark.parametrize("bound", [0.0, 1.2, -0.5])
    def test_recall_floor_outside_unit_interval_rejected(self, bound):
        with pytest.raises(ValueError, match="recall floor"):
            SloSpec("recall", bound=bound, window=1.0)

    @pytest.mark.parametrize("bound", [0.0, -2.0])
    def test_non_positive_throughput_floor_rejected(self, bound):
        with pytest.raises(ValueError, match="throughput floor"):
            SloSpec("throughput", bound=bound, window=1.0)

    def test_every_published_metric_constructs(self):
        for metric in SLO_METRICS:
            SloSpec(metric, bound=0.5, window=1.0)


class TestSloEngineWindows:
    def test_duplicate_metric_rejected(self):
        with pytest.raises(ValueError, match="duplicate SLO spec"):
            SloEngine([
                SloSpec("recall", bound=0.9, window=1.0),
                SloSpec("recall", bound=0.5, window=2.0),
            ])

    def test_empty_engine_is_falsy(self):
        assert not SloEngine([])
        assert SloEngine([SloSpec("recall", bound=0.9, window=1.0)])

    def test_p95_ceiling_per_window(self):
        engine = SloEngine([SloSpec("p95_latency", bound=10.0, window=1.0)])
        for latency in (1.0, 2.0, 3.0):
            engine.observe_match(0.5, latency)
        engine.observe_match(1.5, 50.0)
        engine.observe_match(1.7, None)  # unknown latency: ignored
        engine.close(2.0)
        row = engine.report()["specs"][0]
        assert row["windows_evaluated"] == 2
        assert row["windows_violated"] == 1
        first, second = row["windows"]
        assert first["value"] == 3.0 and first["ok"] is True
        assert second["value"] == 50.0 and second["ok"] is False

    def test_recall_floor_counts_admitted_against_shed(self):
        engine = SloEngine([SloSpec("recall", bound=0.75, window=1.0)])
        for ts in (0.1, 0.2, 0.3):
            engine.observe_route(ts)
        engine.observe_shed(0.4)  # 3/4 == 0.75: floor holds (>=)
        engine.observe_route(1.1)
        engine.observe_shed(1.2)  # 1/2 < 0.75: violated
        engine.close(2.0)
        row = engine.report()["specs"][0]
        first, second = row["windows"]
        assert first["value"] == 0.75 and first["ok"] is True
        assert second["value"] == 0.5 and second["ok"] is False

    def test_empty_throughput_window_charges_the_budget(self):
        # A starved window is exactly what a throughput floor exists to
        # catch, so unlike the other metrics it evaluates when empty.
        engine = SloEngine([SloSpec("throughput", bound=1.0, window=1.0)])
        engine.observe_route(0.2)
        engine.observe_route(0.4)
        engine.observe_route(2.5)
        engine.close(3.0)
        row = engine.report()["specs"][0]
        assert row["windows_evaluated"] == 3
        assert [w["ok"] for w in row["windows"]] == [True, False, True]
        assert row["windows"][1]["value"] == 0.0

    def test_empty_latency_and_recall_windows_are_no_data(self):
        engine = SloEngine([
            SloSpec("p95_latency", bound=10.0, window=1.0),
            SloSpec("recall", bound=0.9, window=1.0),
        ])
        engine.close(5.0)
        report = engine.report()
        for row in report["specs"]:
            assert row["status"] == "no_data"
            assert row["windows_evaluated"] == 0
            assert all(w["ok"] is None for w in row["windows"])
        assert report["verdict"] == "met"

    def test_final_window_is_pro_rated_for_throughput(self):
        # One admit in the half-length tail window still meets a floor of
        # 1 event per unit time: 1 / (3.0 - 2.0) with window 2.0.
        engine = SloEngine([SloSpec("throughput", bound=1.0, window=2.0)])
        engine.observe_route(0.5)
        engine.observe_route(1.5)
        engine.observe_route(2.5)
        engine.close(3.0)
        row = engine.report()["specs"][0]
        tail = row["windows"][-1]
        assert tail["end"] == 3.0
        assert tail["value"] == 1.0 and tail["ok"] is True

    def test_close_is_idempotent(self):
        engine = SloEngine([SloSpec("throughput", bound=1.0, window=1.0)])
        engine.observe_route(0.5)
        engine.close(2.0)
        first = json.dumps(engine.report(), sort_keys=True)
        engine.close(4.0)  # no-op: already closed
        assert json.dumps(engine.report(), sort_keys=True) == first


class TestBurnAndStatus:
    def _recall_engine(self, objective=0.5):
        return SloEngine([
            SloSpec("recall", bound=0.9, window=1.0, objective=objective)
        ])

    def _window(self, engine, index, ok):
        base = float(index)
        engine.observe_route(base + 0.1)
        if not ok:
            for _ in range(3):
                engine.observe_shed(base + 0.2)

    def test_breach_status_before_budget_exhausts(self):
        engine = self._recall_engine(objective=0.5)
        self._window(engine, 0, ok=True)
        self._window(engine, 1, ok=True)
        self._window(engine, 2, ok=False)
        engine.close(3.0)
        row = engine.report()["specs"][0]
        assert row["status"] == "breach"
        assert row["budget"]["used_fraction"] == pytest.approx(1 / 3)
        assert row["budget"]["burn_rate"] == pytest.approx(2 / 3)

    def test_exhausted_once_burn_reaches_one(self):
        engine = self._recall_engine(objective=0.5)
        self._window(engine, 0, ok=False)
        self._window(engine, 1, ok=False)
        self._window(engine, 2, ok=True)
        engine.close(3.0)
        row = engine.report()["specs"][0]
        # Last window passed, but 2/3 violated against a 50% allowance.
        assert row["status"] == "exhausted"
        assert row["budget"]["burn_rate"] == pytest.approx(4 / 3)

    def test_ok_status_and_zero_burn_when_clean(self):
        engine = self._recall_engine()
        for index in range(4):
            self._window(engine, index, ok=True)
        engine.close(4.0)
        row = engine.report()["specs"][0]
        assert row["status"] == "ok"
        assert row["budget"]["burn_rate"] == 0.0
        assert engine.report()["verdict"] == "met"

    def test_fast_burn_sees_only_trailing_windows(self):
        # One old violation followed by four clean windows: the lifetime
        # burn stays charged while the fast (page-now) signal recovers.
        engine = self._recall_engine(objective=0.5)
        self._window(engine, 0, ok=False)
        for index in range(1, 5):
            self._window(engine, index, ok=True)
        engine.close(5.0)
        budget = engine.report()["specs"][0]["budget"]
        assert budget["burn_rate"] > 0.0
        assert budget["fast_burn"] == 0.0

    def test_evaluate_reports_running_status(self):
        engine = self._recall_engine(objective=0.5)
        assert engine.evaluate(0.5) == [{
            "metric": "recall", "bound": 0.9,
            "status": "no_data", "burn_rate": 0.0, "value": None,
        }]
        self._window(engine, 0, ok=False)
        status = engine.evaluate(1.5)  # closes window 0
        assert status[0]["status"] in ("breach", "exhausted")
        assert status[0]["value"] == 0.25


class TestLiveReplayParity:
    _SPECS = (
        SloSpec("p95_latency", bound=4.0, window=1.0),
        SloSpec("recall", bound=0.9, window=1.0),
        SloSpec("throughput", bound=2.0, window=1.0),
    )

    def _drive(self, tracer, evaluate_midrun):
        engine = tracer.engine
        ts = 0.0
        for step in range(60):
            ts = step * 0.1
            tracer.splitter_route(ts, "S0", 1)
            if step % 7 == 0:
                tracer.shed(ts, "S0", "pattern")
            if step % 3 == 0:
                tracer.match(ts, agent=0, latency=1.0 + (step % 5))
            if evaluate_midrun and step % 10 == 0:
                engine.evaluate(ts)
        total = ts + 0.1
        engine.close(total)
        return total

    def test_live_report_equals_trace_replay_byte_for_byte(self):
        recorder = TraceRecorder()
        tracer = SloTracer(SloEngine(list(self._SPECS)), inner=recorder)
        total = self._drive(tracer, evaluate_midrun=True)
        live = json.dumps(tracer.engine.report(), sort_keys=True)
        replayed = json.dumps(
            slo_report(recorder.events, list(self._SPECS), total_time=total),
            sort_keys=True,
        )
        assert live == replayed

    def test_midrun_evaluation_cadence_cannot_change_the_report(self):
        # Window verdicts are pure functions of bucket contents, so how
        # often the control plane polls must be invisible in the report.
        reports = []
        for midrun in (True, False):
            tracer = SloTracer(SloEngine(list(self._SPECS)))
            self._drive(tracer, evaluate_midrun=midrun)
            reports.append(json.dumps(tracer.engine.report(), sort_keys=True))
        assert reports[0] == reports[1]

    def test_engine_mirrors_window_closes_to_the_tracer(self):
        recorder = TraceRecorder()
        engine = SloEngine(
            [SloSpec("throughput", bound=2.0, window=1.0)], tracer=recorder
        )
        engine.observe_route(0.5)
        engine.close(2.0)
        slo_events = [
            e for e in recorder.events if e.kind == TraceKind.SLO
        ]
        assert len(slo_events) == 2
        assert slo_events[0].args["metric"] == "throughput"
        assert slo_events[0].args["ok"] is False  # 1 admit < floor of 2
        assert "burn" in slo_events[0].args

    def test_tracer_chains_to_inner_and_exposes_events(self):
        recorder = TraceRecorder()
        tracer = SloTracer(SloEngine(list(self._SPECS)), inner=recorder)
        tracer.splitter_route(0.1, "S0", 1)
        tracer.shed(0.2, "S1", "tail")
        tracer.match(0.3, agent=0, latency=2.0)
        tracer.replan(0.4, "migrate", [3, 1], "drift", epoch=2)
        tracer.slo(1.0, "recall", 0.5, 0.9, False, 1.0)
        kinds = [event.kind for event in tracer.events]
        assert kinds == [
            TraceKind.SPLITTER_ROUTE, TraceKind.SHED, TraceKind.MATCH,
            TraceKind.REPLAN, TraceKind.SLO,
        ]
        assert tracer.events is recorder.events
