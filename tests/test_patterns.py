"""Tests for pattern construction and validation."""

import pytest

from repro.core import (
    AttributeCondition,
    EventType,
    ItemKind,
    Operator,
    Pattern,
    PatternError,
)


class TestSequenceConstruction:
    def test_basic(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=10.0)
        assert pattern.operator is Operator.SEQ
        assert pattern.length == 3
        assert [item.name for item in pattern.items] == ["p1", "p2", "p3"]

    def test_accepts_event_type_objects(self):
        pattern = Pattern.sequence([EventType("A"), "B"], window=1.0)
        assert pattern.items[0].event_type.name == "A"

    def test_custom_names(self):
        pattern = Pattern.sequence(
            ["A", "B"], window=1.0, names=["first", "second"]
        )
        assert pattern.items[0].name == "first"

    def test_kleene_marker(self):
        pattern = Pattern.sequence(["A", "B", "C"], window=1.0, kleene=[1])
        assert pattern.items[1].is_kleene
        assert pattern.kleene_items() == (pattern.items[1],)

    def test_negated_marker(self):
        pattern = Pattern.sequence(["A", "X", "B"], window=1.0, negated=[1])
        assert pattern.items[1].is_negated
        assert pattern.positive_items() == (pattern.items[0], pattern.items[2])

    def test_kleene_and_negated_conflict(self):
        with pytest.raises(PatternError):
            Pattern.sequence(["A", "B"], window=1.0, kleene=[1], negated=[1])

    def test_duplicate_types_allowed_with_distinct_positions(self):
        pattern = Pattern.sequence(["A", "A"], window=1.0)
        assert pattern.length == 2


class TestValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(PatternError):
            Pattern.sequence(["A"], window=0.0)
        with pytest.raises(PatternError):
            Pattern.sequence(["A"], window=-1.0)

    def test_needs_items(self):
        with pytest.raises(PatternError):
            Pattern.sequence([], window=1.0)

    def test_needs_positive_item(self):
        with pytest.raises(PatternError):
            Pattern.sequence(["A", "B"], window=1.0, negated=[0, 1])

    def test_leading_negation_rejected(self):
        with pytest.raises(PatternError):
            Pattern.sequence(["X", "A"], window=1.0, negated=[0])

    def test_trailing_negation_allowed(self):
        pattern = Pattern.sequence(["A", "X"], window=1.0, negated=[1])
        assert pattern.negated_items()[0].name == "p2"

    def test_condition_position_check(self):
        with pytest.raises(PatternError):
            Pattern.sequence(
                ["A", "B"],
                window=1.0,
                condition=AttributeCondition("p1", "x", "<", "p9", "x"),
            )

    def test_duplicate_position_names_rejected(self):
        with pytest.raises(PatternError):
            Pattern.sequence(["A", "B"], window=1.0, names=["p", "p"])

    def test_and_or_reject_modifiers(self):
        with pytest.raises(PatternError):
            Pattern(
                operator=Operator.AND,
                items=Pattern.sequence(
                    ["A", "B"], window=1.0, kleene=[1]
                ).items,
                window=1.0,
            )


class TestIntrospection:
    def test_conjuncts_of_plain_condition(self):
        cond = AttributeCondition("p1", "x", "<", "p2", "x")
        pattern = Pattern.sequence(["A", "B"], window=1.0, condition=cond)
        assert pattern.conjuncts() == (cond,)

    def test_conjuncts_of_true_is_empty(self):
        pattern = Pattern.sequence(["A", "B"], window=1.0)
        assert pattern.conjuncts() == ()

    def test_item_by_name(self):
        pattern = Pattern.sequence(["A", "B"], window=1.0)
        assert pattern.item_by_name("p2").event_type.name == "B"
        with pytest.raises(PatternError):
            pattern.item_by_name("nope")

    def test_event_types(self):
        pattern = Pattern.sequence(["A", "B"], window=1.0)
        assert [t.name for t in pattern.event_types()] == ["A", "B"]

    def test_describe_mentions_operator_and_window(self):
        text = Pattern.sequence(["A", "B"], window=2.5).describe()
        assert "SEQ" in text
        assert "2.5" in text

    def test_item_kind_repr_markers(self):
        pattern = Pattern.sequence(
            ["A", "B", "X"], window=1.0, kleene=[1], negated=[2]
        )
        reprs = [repr(item) for item in pattern.items]
        assert reprs[1].startswith("+")
        assert reprs[2].startswith("!")


class TestConjunctionDisjunction:
    def test_and_pattern(self):
        pattern = Pattern.conjunction(["A", "B"], window=3.0)
        assert pattern.operator is Operator.AND
        assert all(item.kind is ItemKind.PRIMARY for item in pattern.items)

    def test_or_pattern(self):
        pattern = Pattern.disjunction(["A", "B"], window=3.0)
        assert pattern.operator is Operator.OR
