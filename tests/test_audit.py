"""Decision provenance: audit_report reconstructs triggers and effects
from the trace alone, byte-identically live and from the JSONL export."""

import json

import pytest

from repro.core import Pattern
from repro.datasets import BurstyConfig, generate_bursty_stream
from repro.obs import audit_report
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.tracer import TraceRecorder
from repro.simulator import simulate


def _quiet_trace() -> TraceRecorder:
    recorder = TraceRecorder()
    recorder.alloc_plan(0.0, [2, 2], [1.0, 1.0], "proportional")
    recorder.unit_busy(0.5, 1.0, unit=0, agent=0, role="mb1", item_kind="event")
    recorder.match(2.0, agent=0, latency=1.5)
    return recorder


def _adaptive_trace() -> TraceRecorder:
    """Hand-built trace: plan, skewed busy, a migrate, more busy."""
    recorder = TraceRecorder()
    recorder.alloc_plan(0.0, [4, 4], [1.0, 1.0], "proportional")
    for index in range(10):
        ts = 0.5 + index * 0.5
        recorder.unit_busy(ts, 0.9, unit=0, agent=0, role="mb1",
                           item_kind="event")
        recorder.unit_busy(ts, 0.1, unit=4, agent=1, role="mb1",
                           item_kind="event")
        recorder.queue_depth(ts, agent=0, channel=0, depth=4 + index)
        recorder.queue_depth(ts, agent=1, channel=0, depth=1)
    recorder.replan(6.0, "reallocate", [7, 1],
                    "drift moves 3 > allowed 2", epoch=2)
    for index in range(10):
        ts = 6.5 + index * 0.5
        recorder.unit_busy(ts, 0.9, unit=0, agent=0, role="mb1",
                           item_kind="event")
        recorder.unit_busy(ts, 0.1, unit=7, agent=1, role="mb1",
                           item_kind="event")
        recorder.queue_depth(ts, agent=0, channel=0, depth=2)
        recorder.queue_depth(ts, agent=1, channel=0, depth=1)
    return recorder


class TestAuditReport:
    def test_non_adaptive_trace_yields_none(self):
        assert audit_report(_quiet_trace()) is None

    def test_trigger_carries_the_estimator_evidence(self):
        report = audit_report(_adaptive_trace())
        assert report is not None
        assert report["summary"]["count"] == 1
        assert report["summary"]["by_kind"] == {"reallocate": 1}
        decision = report["decisions"][0]
        assert decision["kind"] == "reallocate"
        assert decision["per_agent"] == [7, 1]
        assert decision["epoch"] == 2
        trigger = decision["trigger"]
        # 20 unit_busy observations (10 per agent) before the decision.
        assert trigger["observations"] == 20
        assert trigger["since_plan_ts"] == 0.0
        assert trigger["per_agent_before"] == [4, 4]
        assert trigger["predicted_shares"] == [0.5, 0.5]
        assert trigger["observed_shares"][0] == pytest.approx(0.9)
        assert trigger["optimal"] == [7, 1]
        assert trigger["moves"] == 3
        assert trigger["drifted"] is True

    def test_effect_partitions_the_run_at_the_decision(self):
        report = audit_report(_adaptive_trace())
        effect = report["decisions"][0]["effect"]
        before, after = effect["before"], effect["after"]
        assert before["start"] == 0.0 and before["end"] == 6.0
        assert after["start"] == 6.0
        assert before["busy_shares"][0] == pytest.approx(0.9)
        assert after["busy_shares"][0] == pytest.approx(0.9)
        # Queue pressure on agent 0 eased after the reallocation.
        assert after["queue_integrals"][0] < before["queue_integrals"][0]
        # The new split [7, 1] matches where the load actually went, the
        # old split [4, 4] did not: the decision aligned the allocation.
        assert effect["moves_to_optimal"] == {"before": 3, "after": 0}
        assert effect["aligned"] is True

    def test_estimator_reset_mirrors_the_live_plane(self):
        recorder = _adaptive_trace()
        recorder.replan(12.0, "shed", [7, 1], "backlog past hard ceiling")
        report = audit_report(recorder)
        second = report["decisions"][1]
        # Judged against post-reallocation observations only.
        assert second["trigger"]["since_plan_ts"] == 6.0
        assert second["trigger"]["observations"] == 20
        assert second["trigger"]["per_agent_before"] == [7, 1]
        # [7, 1] tracks the 0.9/0.1 load: no residual drift post-replan.
        assert second["trigger"]["drifted"] is False
        assert "moves_to_optimal" not in second["effect"]

    def test_total_time_defaults_to_the_trace_span(self):
        report = audit_report(_adaptive_trace())
        assert report["total_time"] == pytest.approx(11.0 + 0.9)
        pinned = audit_report(_adaptive_trace(), total_time=20.0)
        assert pinned["total_time"] == 20.0
        assert pinned["decisions"][0]["effect"]["after"]["end"] == 20.0


class TestJsonlRoundTrip:
    @pytest.fixture(scope="class")
    def adaptive_result(self):
        pattern = Pattern.sequence(["S0", "S1", "S2"], window=0.5)
        events = list(generate_bursty_stream(BurstyConfig(
            symbols=("S0", "S1", "S2", "S3"),
            base_rate=40.0,
            num_phases=4,
            events_per_phase=120,
            seed=7,
        )))
        recorder = TraceRecorder()
        reference = simulate("hypersonic", pattern, events, num_cores=4)
        return simulate(
            "hypersonic", pattern, events, num_cores=4,
            adapt="on", shed_bound=8, shed_policy="pattern",
            pace=1.0 / max(1.5 * reference.throughput, 1e-12),
            tracer=recorder,
        ), recorder

    def test_live_audit_equals_jsonl_replay_byte_for_byte(
        self, adaptive_result, tmp_path
    ):
        result, recorder = adaptive_result
        live = result.extra["obs"]["audit"]
        assert live["decisions"], "adaptive run produced no decisions"
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), recorder)
        replayed = audit_report(
            read_jsonl(str(path)), total_time=live["total_time"]
        )
        assert (
            json.dumps(live, sort_keys=True)
            == json.dumps(replayed, sort_keys=True)
        )

    def test_every_decision_is_fully_reconstructable(self, adaptive_result):
        result, _ = adaptive_result
        audit = result.extra["obs"]["audit"]
        control = result.extra["control"]
        assert audit["summary"]["count"] == len(control["decisions"])
        for record, emitted in zip(audit["decisions"], control["decisions"]):
            assert record["kind"] == emitted["kind"]
            assert record["reason"] == emitted["reason"]
            assert record["ts"] == emitted["ts"]
            trigger = record["trigger"]
            assert trigger["observations"] >= 0
            assert (
                len(trigger["observed_shares"])
                == len(trigger["per_agent_before"])
            )
            assert "before" in record["effect"]
            assert "after" in record["effect"]
