"""Tests for the benchmark harness and report formatting."""

import pytest

from repro.bench import (
    BenchScale,
    build_query,
    compare_strategies,
    default_cache,
    format_series_table,
    relative_gains,
    sensor_events,
    shifted_stock_events,
    skewed_stock_events,
    stock_events,
    trip_events,
)

SMALL = BenchScale(num_events=800, seed=5)


class TestDatasetsBuilders:
    def test_stock_events_cached_and_copied(self):
        first = stock_events(SMALL)
        second = stock_events(SMALL)
        assert len(first) == 800
        assert first is not second  # fresh list per call
        assert first[0].event_id == second[0].event_id  # same cached events

    def test_sensor_events(self):
        events = sensor_events(SMALL)
        assert len(events) == 800
        assert "distance_kitchen" in events[0].attributes

    def test_trip_events_sized_off_the_event_budget(self):
        first = trip_events(SMALL)
        second = trip_events(SMALL)
        assert first[0].event_id == second[0].event_id  # same cached events
        # ~5 events per trip (start, geometric rides, end), 160 trips.
        assert 320 <= len(first) <= 1600
        assert {e.type.name for e in first} == {"start", "ride", "end"}
        assert "bike" in first[0].attributes

    def test_shifted_events_in_order_with_rate_shift(self):
        events = shifted_stock_events(SMALL)
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)
        half = len(events) // 2
        early = [e.type.name for e in events[: half // 2]]
        late = [e.type.name for e in events[-half // 2:]]
        # The late mix is skewed toward high-index symbols.
        late_high = sum(1 for n in late if int(n[1:]) >= 4) / len(late)
        early_high = sum(1 for n in early if int(n[1:]) >= 4) / len(early)
        assert late_high > early_high + 0.2

    def test_skewed_rates(self):
        events = skewed_stock_events(SMALL)
        counts = {}
        for event in events:
            counts[event.type.name] = counts.get(event.type.name, 0) + 1
        assert counts["S0"] > 3 * counts["S1"]


class TestBuildQuery:
    def test_stock_templates(self):
        events = stock_events(SMALL)
        for template, length in [("seq", 3), ("kleene", 6), ("negation", 4)]:
            spec = build_query("stocks", template, length, 20.0, events, SMALL)
            assert spec.pattern.window == 20.0

    def test_sensor_templates(self):
        events = sensor_events(SMALL)
        spec = build_query("sensors", "seq", 3, 20.0, events, SMALL)
        assert spec.pattern.length == 3

    def test_trip_templates(self):
        events = trip_events(SMALL)
        for template, has_kleene, has_negation in [
            ("seq", False, False),
            ("kleene", True, False),
            ("negation", False, True),
        ]:
            spec = build_query("trips", template, 3, 4.0, events, SMALL)
            assert spec.pattern.window == 4.0
            assert any(i.is_kleene for i in spec.pattern.items) == has_kleene
            assert (
                any(i.is_negated for i in spec.pattern.items) == has_negation
            )
        with pytest.raises(ValueError):
            build_query("trips", "zigzag", 3, 4.0, events, SMALL)

    def test_unknown_inputs(self):
        events = stock_events(SMALL)
        with pytest.raises(ValueError):
            build_query("weather", "seq", 3, 20.0, events, SMALL)
        with pytest.raises(ValueError):
            build_query("stocks", "zigzag", 3, 20.0, events, SMALL)


class TestCompareStrategies:
    def test_all_strategies_agree_and_gains_computed(self):
        events = stock_events(SMALL)
        spec = build_query("stocks", "seq", 3, 20.0, events, SMALL)
        results = compare_strategies(
            spec.pattern, events, cores=4,
            strategies=("sequential", "hypersonic", "llsf"),
            scale=SMALL,
        )
        match_counts = {r.matches for r in results.values()}
        assert len(match_counts) == 1
        gains = relative_gains(results)
        assert set(gains) == {"hypersonic", "llsf"}
        assert all(g > 0 for g in gains.values())


class TestFormatting:
    def test_series_table_layout(self):
        text = format_series_table(
            "My figure", "window", [1, 2, 4],
            {"hypersonic": [1.0, 2.0, 3.0], "llsf": [0.5, 0.25, 12345.0]},
            unit="x",
        )
        lines = text.splitlines()
        assert lines[0].startswith("My figure")
        assert "window" in lines[2]
        assert any("hypersonic" in line for line in lines)
        assert "1.23e+04" in text  # large values in scientific notation

    def test_series_table_validates_lengths(self):
        with pytest.raises(ValueError):
            format_series_table("t", "x", [1, 2], {"s": [1.0]})

    def test_default_cache_in_memory_bound_regime(self):
        cache = default_cache()
        # The regime the benches target: a few hundred buffered items cost
        # several times the in-cache rate.
        assert cache.comparison_penalty(256, 256 * 256) > 3.0
