"""Kernel-refactor parity suite.

Pins every strategy's full :class:`~repro.simulator.SimResult` against
goldens generated from the pre-refactor seed code
(``tests/data/sim_goldens.json``, regenerated only deliberately via
``tests/make_sim_goldens.py``), and asserts that streaming inputs —
generators and CSV sources — produce results identical to list inputs
while keeping only a bounded number of events resident.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets import load_stream, save_stream, stream_source
from repro.simulator import STRATEGIES, simulate

from tests.make_sim_goldens import (
    GOLDEN_PATH,
    NUM_CORES,
    TRIP_GOLDEN_PATH,
    golden_pattern,
    golden_workload,
    result_payload,
    trip_pattern,
    trip_workload,
)


@pytest.fixture(scope="module")
def goldens() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def pattern():
    return golden_pattern()


def _roundtrip(result) -> dict:
    """JSON round-trip so float comparison semantics match the goldens."""
    return json.loads(json.dumps(result_payload(result)))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_closed_loop_results_bit_identical(goldens, pattern, strategy):
    kwargs = {"agent_dynamic": True} if strategy == "hypersonic" else {}
    result = simulate(
        strategy, pattern, golden_workload(), num_cores=NUM_CORES, **kwargs
    )
    assert _roundtrip(result) == goldens["closed_loop"][strategy]


@pytest.mark.parametrize("strategy", ["hypersonic", "rip"])
def test_paced_results_bit_identical(goldens, pattern, strategy):
    result = simulate(
        strategy, pattern, golden_workload(), num_cores=NUM_CORES, pace=3.0
    )
    assert _roundtrip(result) == goldens["paced"][strategy]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_trip_chain_results_bit_identical(strategy):
    """The Kleene trip-chain workload has goldens of its own
    (``trip_chain_goldens.json``) — every strategy's full SimResult on the
    closure-heavy pattern is pinned, separately from the legacy file so
    the pattern-language extension stays strictly additive."""
    goldens = json.loads(TRIP_GOLDEN_PATH.read_text())
    kwargs = {"agent_dynamic": True} if strategy == "hypersonic" else {}
    result = simulate(
        strategy, trip_pattern(), trip_workload(), num_cores=NUM_CORES,
        **kwargs,
    )
    assert _roundtrip(result) == goldens["closed_loop"][strategy]


def test_measure_latency_bit_identical(goldens, pattern):
    result = simulate(
        "sequential", pattern, golden_workload(), num_cores=1,
        measure_latency=True,
    )
    assert _roundtrip(result) == goldens["measure_latency"]["sequential"]


# --------------------------------------------------------------------- #
# Streaming inputs: generator == list                                    #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_generator_input_matches_list_input(pattern, strategy):
    events = golden_workload()
    from_list = simulate(strategy, pattern, events, num_cores=NUM_CORES)
    from_gen = simulate(
        strategy, pattern, (event for event in events), num_cores=NUM_CORES
    )
    assert result_payload(from_list) == result_payload(from_gen)


def test_generator_input_measure_latency_matches_list(pattern):
    events = golden_workload()
    from_list = simulate(
        "rip", pattern, events, num_cores=NUM_CORES, measure_latency=True
    )
    from_gen = simulate(
        "rip", pattern, (event for event in events), num_cores=NUM_CORES,
        measure_latency=True,
    )
    assert result_payload(from_list) == result_payload(from_gen)


def test_compare_strategies_accepts_generator(pattern):
    from repro.bench.harness import compare_strategies

    events = golden_workload()
    from_list = compare_strategies(
        pattern, events, cores=NUM_CORES, strategies=("sequential", "llsf")
    )
    from_gen = compare_strategies(
        pattern, (event for event in events), cores=NUM_CORES,
        strategies=("sequential", "llsf"),
    )
    assert {k: result_payload(v) for k, v in from_list.items()} == {
        k: result_payload(v) for k, v in from_gen.items()
    }


# --------------------------------------------------------------------- #
# Streaming CSV loader                                                   #
# --------------------------------------------------------------------- #


def test_csv_stream_source_matches_loaded_list(pattern, tmp_path):
    path = tmp_path / "stream.csv"
    save_stream(golden_workload(), path)
    from_list = simulate(
        "llsf", pattern, load_stream(path), num_cores=NUM_CORES
    )
    from_csv = simulate(
        "llsf", pattern, stream_source(path), num_cores=NUM_CORES
    )
    assert result_payload(from_list) == result_payload(from_csv)


def test_csv_source_replays_for_multiple_strategies(pattern, tmp_path):
    from repro.bench.harness import compare_strategies

    path = tmp_path / "stream.csv"
    save_stream(golden_workload(), path)
    results = compare_strategies(
        pattern, stream_source(path), cores=NUM_CORES,
        strategies=("sequential", "rip"),
    )
    assert results["sequential"].matches == results["rip"].matches


# --------------------------------------------------------------------- #
# Bounded resident events                                                #
# --------------------------------------------------------------------- #


class _TrackedAttrs(dict):
    """Attribute dict that supports weak references (plain dicts do not)."""

    __hash__ = object.__hash__  # identity hash, for the WeakSet


class _CountingSource:
    """Single-pass source yielding freshly built events, tracking how many
    are still resident via weak references to their private attribute
    dicts (``Event`` itself is a slotted dataclass and not weakref-able;
    each event is its attribute dict's only outside owner, so a live dict
    means a live event)."""

    replayable = False

    def __init__(self, template):
        import weakref

        self._template = template
        self._alive = weakref.WeakSet()
        self.peak_alive = 0

    def _fresh(self, event):
        from repro.core import Event

        attrs = _TrackedAttrs(event.attributes)
        self._alive.add(attrs)
        if len(self._alive) > self.peak_alive:
            self.peak_alive = len(self._alive)
        return Event(
            event.type,
            event.timestamp,
            attrs,
            payload_size=event.payload_size,
        )

    def prefix(self, count):
        return [self._fresh(event) for event in self._template[:count]]

    def __iter__(self):
        for event in self._template:
            yield self._fresh(event)


@pytest.mark.parametrize("strategy", ["sequential", "rip", "llsf"])
def test_partition_simulator_keeps_bounded_resident_events(strategy):
    """With a stream much longer than the window, the simulator must not
    retain the whole stream: resident events stay bounded by the window
    (plus the strategy's lookahead), far below the stream length.

    The pattern's last type never occurs, so no match ever completes and
    retains events — what stays alive is exactly what the simulator still
    holds.
    """
    from repro.core import Pattern
    from tests.conftest import make_stream

    pattern = Pattern.sequence(["A", "B", "Q"], window=6.0)
    num_events = 3000
    source = _CountingSource(make_stream(num_events=num_events, seed=11))
    result = simulate(strategy, pattern, source, num_cores=NUM_CORES)
    assert result.events == num_events
    assert result.matches == 0
    # The window spans ~6 time units at ~2 events/time-unit -> tens of
    # events; RIP adds a chunk (256) plus a window of lookahead.  A quarter
    # of the stream is a generous ceiling that still fails clearly if the
    # stream is materialized.
    assert source.peak_alive < num_events // 4
