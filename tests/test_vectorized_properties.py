"""Property tests: the vectorized kernels agree with the scalar oracles.

The batched execution mode is only sound if its kernels reproduce the
scalar predicates: :func:`repro.core.vectorized.batched_pearson` must
stay within 1e-12 of :func:`repro.core.conditions.pearson_correlation`
(bit-identical on the fallback path), and
:func:`repro.core.vectorized.batched_compare` must agree exactly with
the ``_OPERATORS`` table.  Hypothesis drives both kernels with
adversarial inputs — near-constant sequences, mixed magnitudes, tiny
deviations, NaN-free float corners — under both backends (numpy and the
pure-Python fallback, forced by nulling the module's ``np`` handle).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.core.vectorized as vec
from repro.core.conditions import _OPERATORS, pearson_correlation
from repro.core.errors import ConditionError
from repro.core.vectorized import batched_compare, batched_pearson

TOLERANCE = 1e-12

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)

#: Adversarial history values: wide magnitudes plus clustered values that
#: produce near-zero variance after centering.
history_values = st.one_of(
    finite_floats,
    st.floats(min_value=99.999999, max_value=100.000001),
    st.sampled_from([0.0, -0.0, 1.0, 1e-15, -1e-15, 1e9, -1e9]),
)


def histories_of(length: int):
    return st.lists(
        st.lists(history_values, min_size=length, max_size=length),
        min_size=0,
        max_size=8,
    )


@st.composite
def pearson_case(draw):
    length = draw(st.integers(min_value=2, max_value=24))
    query = draw(st.lists(history_values, min_size=length, max_size=length))
    rows = draw(histories_of(length))
    return query, rows


@pytest.fixture(params=["numpy", "fallback"])
def backend(request, monkeypatch):
    if request.param == "numpy":
        if not vec.have_numpy():
            pytest.skip("numpy not importable")
    else:
        monkeypatch.setattr(vec, "np", None)
    return request.param


class TestBatchedPearson:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(case=pearson_case())
    def test_matches_scalar_within_tolerance(self, backend, case):
        query, rows = case
        batched = batched_pearson(query, rows)
        assert len(batched) == len(rows)
        for value, row in zip(batched, rows):
            expected = pearson_correlation(query, row)
            assert math.isfinite(value)
            assert abs(value - expected) <= TOLERANCE, (query, row)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(case=pearson_case())
    def test_fallback_is_bit_identical(self, monkeypatch, case):
        monkeypatch.setattr(vec, "np", None)
        query, rows = case
        batched = batched_pearson(query, rows)
        assert batched == [pearson_correlation(query, row) for row in rows]

    def test_degenerate_rows_are_zero(self, backend):
        query = [1.0, 2.0, 3.0]
        rows = [[5.0, 5.0, 5.0], [1.0, 2.0, 3.0]]
        batched = batched_pearson(query, rows)
        assert batched[0] == 0.0
        assert batched[1] == pytest.approx(1.0)

    def test_length_mismatch_raises_like_scalar(self, backend):
        with pytest.raises(ConditionError):
            batched_pearson([1.0, 2.0, 3.0], [[1.0, 2.0]])


class TestBatchedCompare:
    operators = sorted(_OPERATORS)

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        values=st.lists(finite_floats, max_size=16),
        pivot=finite_floats,
        operator=st.sampled_from(operators),
        value_side=st.sampled_from(["left", "right"]),
    )
    def test_matches_operator_table(
        self, backend, values, pivot, operator, value_side
    ):
        scalar_op = _OPERATORS[operator]
        if value_side == "left":
            batched = batched_compare(operator, values, pivot)
            expected = [bool(scalar_op(v, pivot)) for v in values]
        else:
            batched = batched_compare(operator, pivot, values)
            expected = [bool(scalar_op(pivot, v)) for v in values]
        assert batched == expected

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        values=st.lists(st.integers(min_value=-10**30, max_value=10**30),
                        max_size=12),
        pivot=st.integers(min_value=-10**30, max_value=10**30),
        operator=st.sampled_from(operators),
    )
    def test_huge_ints_keep_exact_semantics(self, backend, values, pivot,
                                            operator):
        # Ints beyond float precision must not be coerced through numpy:
        # the kernel only vectorizes all-float batches.
        scalar_op = _OPERATORS[operator]
        batched = batched_compare(operator, values, pivot)
        assert batched == [bool(scalar_op(v, pivot)) for v in values]


def test_have_numpy_reflects_handle(monkeypatch):
    if vec.np is not None:
        assert vec.have_numpy()
    monkeypatch.setattr(vec, "np", None)
    assert not vec.have_numpy()
